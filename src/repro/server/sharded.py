"""Horizontally sharded store serving: shard workers + a scatter-gather coordinator.

One process serving one mmap'd columnar store stops scaling when the
user population outgrows a single machine's memory.  This module
partitions the store by **contiguous user range** (see
:mod:`repro.core.partition`), runs each shard as its own worker process
— a plain :class:`~repro.server.engine.QueryEngine` over the shard's
store, with its own persistent cache — and puts a
:class:`ShardCoordinator` in front that speaks the typed query protocol
unchanged.

Why the sharded answers are *bit-identical*, not merely close:

* Every query family bottoms out in integer sufficient statistics —
  bit sums, Hamming-weight histograms, or aligned matrix rows — and
  integers from disjoint user ranges recombine exactly
  (:mod:`repro.queries.reduction`).
* The coordinator re-runs the single-store float arithmetic **once**,
  on the merged integers: ``sum/M`` is the same correctly-rounded
  float64 division ``np.mean`` performs, and the merged weight
  histogram feeds the same ``np.linalg.solve`` Appendix F uses
  (:meth:`SketchEstimator.estimate_from_counts`,
  :func:`~repro.core.combine.combine_from_weight_counts`).
* Contiguous ranges of the *sorted* user universe keep each shard's
  aligned order a contiguous run of the single-store aligned order, so
  ``bit_matrix`` rows concatenate back exactly.

Shard workers host a :class:`ShardWorkerEngine` behind the stock
:class:`~repro.server.remote.RemoteServer`: the public query kinds
still work against any single shard, and one extra shard-internal kind
(``shard_partial``, :class:`~repro.protocol.messages.ShardPartialRequest`)
serves the partial statistics.  The coordinator tracks membership
(join/leave with request draining), retries a failed shard once on a
fresh connection, and otherwise raises :class:`ShardUnavailableError` —
which the protocol layer maps to the structured ``shard_unavailable``
error envelope, so a remote analyst sees a typed error, never a hang or
a traceback.  The shard map is checkpointed atomically
(:meth:`ShardMap.save`) for crash recovery
(:meth:`ShardedService.from_checkpoint`).
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.combine import combine_from_weight_counts
from ..core.estimator import QueryEstimate, SketchEstimator
from ..core.params import PrivacyParams
from ..core.partition import user_universe
from ..core.prf import prf_from_spec
from ..data.encoding import int_to_bits
from ..protocol.envelope import ProtocolError
from ..protocol.messages import (
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    EvaluatePlanRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
    QueryRequest,
    QueryResponse,
    ShardPartialRequest,
)
from ..queries.ast import Conjunction
from ..queries.conjunctive import LinearPlan, evaluate_plan
from ..queries.reduction import (
    merge_bit_sum_partials,
    merge_matrix_partials,
    merge_weight_count_partials,
)
from .engine import MissingSketchError, QueryEngine, search_exact_cover
from .remote import RemoteQueryEngine, RemoteServer
from .resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    current_deadline,
)
from .serialization import load_store, save_store

__all__ = [
    "SHARD_ANALYST",
    "ShardCoordinator",
    "ShardMap",
    "ShardSpec",
    "ShardUnavailableError",
    "ShardWorkerEngine",
    "ShardedService",
    "run_shard_worker",
    "sharded_service",
]

Subset = Tuple[int, ...]

SHARD_MAP_FORMAT = "repro-shard-map"
SHARD_MAP_VERSION = 1

#: Bearer identity the coordinator presents on shard-internal
#: connections.  Workers bind to loopback and serve partial statistics
#: of already-public sketches, so the name is an identity, not a
#: secret; a deployment exposing workers beyond localhost must front
#: them with real per-analyst tokens instead.
SHARD_ANALYST = "shard-coordinator"


class ShardUnavailableError(RuntimeError):
    """A shard required for an exact answer cannot be reached.

    Raised by the coordinator after its single retry fails, or when a
    shard has left the membership and not rejoined.  Counting queries
    reduce exactly only over *all* shards, so a partial answer would be
    silently wrong — the coordinator refuses instead.  Maps to the
    ``shard_unavailable`` structured error envelope on the wire; the
    query is safe to retry once the shard rejoins.
    """


# ----------------------------------------------------------------------
# The checkpointable shard map
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard's durable description: identity, store file, user range."""

    shard_id: str
    store_path: str
    num_users: int
    first_user: str  # "" for an empty shard
    last_user: str


@dataclass(frozen=True)
class ShardMap:
    """The coordinator's durable view of the cluster.

    Carries the **original** store's subset catalog (in publication
    order — the exact-cover search is order-sensitive, and error
    messages list it) plus one :class:`ShardSpec` per shard in user-range
    order.  :meth:`save` writes atomically (temp file + ``os.replace``)
    so a crash mid-checkpoint leaves the previous map intact;
    :meth:`load` refuses truncated or foreign files with ``ValueError``.
    """

    subsets: Tuple[Subset, ...]
    shards: Tuple[ShardSpec, ...]
    #: Optional persistent-cache metadata checkpointed alongside the map
    #: (see :meth:`ShardedService.checkpoint`): whether per-worker caches
    #: are enabled, their byte budget, and the cache-generation
    #: directories each worker had populated.  ``None`` ≡ no cache state
    #: recorded — the field is omitted from the JSON and the map version
    #: stays 1, so pre-resilience checkpoints load unchanged.
    cache_state: Optional[dict] = None

    def save(self, path: str | os.PathLike) -> None:
        """Atomically checkpoint the map as JSON."""
        path = os.fspath(path)
        payload = {
            "format": SHARD_MAP_FORMAT,
            "version": SHARD_MAP_VERSION,
            "subsets": [list(subset) for subset in self.subsets],
            "shards": [
                {
                    "shard_id": spec.shard_id,
                    "store_path": spec.store_path,
                    "num_users": spec.num_users,
                    "first_user": spec.first_user,
                    "last_user": spec.last_user,
                }
                for spec in self.shards
            ],
        }
        if self.cache_state is not None:
            payload["cache_state"] = self.cache_state
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            os.replace(tmp_path, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_path)
            raise

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ShardMap":
        """Load a checkpoint, refusing anything malformed with ``ValueError``."""
        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ValueError(f"unreadable shard-map checkpoint {path}: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"truncated or corrupt shard-map checkpoint {path}: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("format") != SHARD_MAP_FORMAT:
            raise ValueError(
                f"not a shard-map checkpoint: {path} "
                f"(format tag {data.get('format') if isinstance(data, dict) else data!r})"
            )
        if data.get("version") != SHARD_MAP_VERSION:
            raise ValueError(
                f"unsupported shard-map version {data.get('version')!r} in {path}; "
                f"this build reads version {SHARD_MAP_VERSION}"
            )
        try:
            subsets = tuple(tuple(int(i) for i in s) for s in data["subsets"])
            shards = tuple(
                ShardSpec(
                    shard_id=str(entry["shard_id"]),
                    store_path=str(entry["store_path"]),
                    num_users=int(entry["num_users"]),
                    first_user=str(entry["first_user"]),
                    last_user=str(entry["last_user"]),
                )
                for entry in data["shards"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed shard-map checkpoint {path}: {exc}") from exc
        cache_state = data.get("cache_state")
        if cache_state is not None and not isinstance(cache_state, dict):
            raise ValueError(
                f"malformed shard-map checkpoint {path}: cache_state must be "
                f"an object, got {type(cache_state).__name__}"
            )
        return cls(subsets=subsets, shards=shards, cache_state=cache_state)


# ----------------------------------------------------------------------
# The shard worker: QueryEngine + the partial-statistics op
# ----------------------------------------------------------------------
class ShardWorkerEngine:
    """One shard's engine: a plain :class:`QueryEngine` plus ``shard_partial``.

    Delegates every public query kind to the wrapped engine (a single
    shard is a perfectly good single-store server for its own user
    range) and answers the shard-internal
    :class:`~repro.protocol.messages.ShardPartialRequest` with integer
    sufficient statistics computed through the same cached-column paths
    the engine's own handlers use — so coordinator reductions reuse the
    shard's persistent cache exactly like local queries do.

    A shard holding no publisher of a requested subset, or no user
    aligned across all requested subsets, returns a zero partial
    (``num_users = 0``) rather than an error: whether a subset is
    missing *globally* is the coordinator's call against the full
    catalog.
    """

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine
        # The RemoteServer perimeter reads `.estimator.params` when a
        # privacy budget is configured, and the `status` request kind
        # reads `.cache.stats`; expose the same surface.
        self.estimator = engine.estimator
        self.cache = engine.cache

    def execute(self, request: QueryRequest) -> QueryResponse:
        if request.kind == ShardPartialRequest.kind:
            return QueryResponse(kind=request.kind, result=self._partial(request))
        return self.engine.execute(request)

    def _partial(self, request: ShardPartialRequest) -> dict:
        if request.op == "bit_sums":
            return self._bit_sums(request)
        if request.op == "weight_counts":
            return self._weight_counts(request)
        return self._matrix_rows(request)

    def _bit_sums(self, request: ShardPartialRequest) -> dict:
        subset = request.subsets[0]
        values = [group[0] for group in request.groups]
        if not self.engine.store.has_subset(subset):
            return {"num_users": 0, "sums": [0] * len(values)}
        columns = self.engine.cache.bits(subset, values)
        return {
            "num_users": int(self.engine.store.num_users(subset)),
            "sums": [int(np.asarray(column).sum()) for column in columns],
        }

    def _aligned_gathers(
        self,
        subsets: Tuple[Subset, ...],
        groups: Tuple[Tuple[Tuple[int, ...], ...], ...],
    ) -> Tuple[Optional[List[List[np.ndarray]]], int]:
        """Cached full columns gathered onto this shard's aligned users.

        Returns ``(gathered, num_users)`` with ``gathered[i][j]`` the
        ``i``-th subset's aligned column for group ``j``, or
        ``(None, 0)`` when this shard has no user spanning all subsets.
        """
        store = self.engine.store
        if any(not store.has_subset(subset) for subset in subsets):
            return None, 0
        try:
            aligned = self.engine._aligned_columns(tuple(subsets))
        except ValueError:
            return None, 0
        gathered: List[List[np.ndarray]] = []
        for i, (subset, index) in enumerate(zip(subsets, aligned.indices)):
            fulls = self.engine.cache.bits(subset, [group[i] for group in groups])
            gathered.append([np.asarray(full)[index] for full in fulls])
        return gathered, len(aligned.user_ids)

    def _weight_counts(self, request: ShardPartialRequest) -> dict:
        k = len(request.subsets)
        gathered, num_users = self._aligned_gathers(request.subsets, request.groups)
        if gathered is None:
            return {
                "num_users": 0,
                "counts": [[0] * (k + 1) for _ in request.groups],
            }
        counts = []
        for j in range(len(request.groups)):
            # Mirrors combine.weight_histogram's integer half exactly:
            # row sums of the (users x k) int8 matrix, then bincount.
            matrix = np.column_stack([gathered[i][j] for i in range(k)])
            weights = matrix.sum(axis=1).astype(np.int64)
            counts.append(np.bincount(weights, minlength=k + 1).tolist())
        return {"num_users": num_users, "counts": counts}

    def _matrix_rows(self, request: ShardPartialRequest) -> dict:
        gathered, num_users = self._aligned_gathers(request.subsets, request.groups)
        if gathered is None:
            return {"num_users": 0, "rows": []}
        matrix = np.column_stack(
            [gathered[i][0] for i in range(len(request.subsets))]
        )
        return {"num_users": num_users, "rows": matrix.tolist()}


def run_shard_worker(config: dict) -> None:
    """Process entry point for one shard worker (spawn-safe primitives only).

    ``config`` keys: ``store_path``, ``prf_spec`` (from ``prf.spec()``),
    ``ready_path``, ``token``, and optionally ``host``, ``cache_dir``,
    ``cache_budget_bytes``.  Loads the shard store, serves a
    :class:`ShardWorkerEngine` on an ephemeral loopback port, and
    reports the bound address by atomically writing ``"host port"`` to
    ``ready_path``.  Blocks until the process is terminated.
    """
    prf = prf_from_spec(config["prf_spec"])
    store, _header = load_store(config["store_path"], expected_prf=prf)
    estimator = SketchEstimator(PrivacyParams(p=prf.p), prf)
    engine = QueryEngine(
        None,
        store,
        estimator,
        cache_dir=config.get("cache_dir"),
        cache_budget_bytes=config.get("cache_budget_bytes"),
    )
    server = RemoteServer(ShardWorkerEngine(engine), {SHARD_ANALYST: config["token"]})
    ready_path = config["ready_path"]

    def _ready(address: Tuple[str, int]) -> None:
        host, port = address
        tmp_path = f"{ready_path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(f"{host} {port}\n")
        os.replace(tmp_path, ready_path)

    server.run(config.get("host", "127.0.0.1"), 0, ready_callback=_ready)


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class _ShardHandle:
    """The coordinator's connection to one live shard worker.

    Each handle owns its shard's :class:`CircuitBreaker`: the breaker's
    lifetime is the *membership* lifetime, so a shard that re-joins
    (:meth:`ShardCoordinator.join` after a restart) starts with a closed
    circuit regardless of how it left.
    """

    def __init__(
        self,
        shard_id: str,
        host: str,
        port: int,
        token: str,
        timeout: float,
        breaker: CircuitBreaker,
    ) -> None:
        self.shard_id = shard_id
        self.host = host
        self.port = int(port)
        self._token = token
        self._timeout = timeout
        self.breaker = breaker
        # One wire per shard: requests to the same shard serialize here
        # (protocol framing demands it — replies are matched to requests
        # by order); distinct shards proceed in parallel on the shared
        # scatter pool, and the worker's own dispatch pool overlaps work
        # across coordinator connections.
        self.lock = threading.Lock()
        self.client: Optional[RemoteQueryEngine] = RemoteQueryEngine(
            host, port, token, timeout=timeout
        )

    def reconnect(self) -> None:
        # Drop the old client *before* dialing: if the dial fails, the
        # handle is left with no client (not a closed one), so the next
        # request goes straight back through the retry path instead of
        # tripping over a closed socket file.
        old, self.client = self.client, None
        if old is not None:
            with contextlib.suppress(Exception):
                old.close()
        self.client = RemoteQueryEngine(
            self.host, self.port, self._token, timeout=self._timeout
        )

    def close(self) -> None:
        if self.client is not None:
            with contextlib.suppress(Exception):
                self.client.close()


class ShardCoordinator:
    """Scatter-gather front-end speaking the typed query protocol unchanged.

    Drop-in for a single-store :class:`QueryEngine` wherever only the
    ``execute``/``estimator`` surface is used — in particular behind
    :class:`~repro.server.remote.RemoteServer` — and byte-compatible
    with it: every handler reproduces the single-store result *and* the
    single-store error messages and precedence, because global checks
    (catalog membership, widths, partitions) run against the original
    store's subset catalog **before** any fan-out, and the float
    arithmetic runs exactly once on exactly-merged integer partials.

    Membership is dynamic: shards :meth:`join` with a live address and
    :meth:`leave` with request draining (in-flight fan-outs finish
    first).  A scatter hitting a dead connection retries once on a
    fresh connection — a worker restarted in place answers, a dead one
    fails fast into :class:`ShardUnavailableError`.  The shard map is
    checkpointed atomically on construction when ``checkpoint_path`` is
    given.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        estimator: SketchEstimator,
        *,
        checkpoint_path: str | os.PathLike | None = None,
        timeout: float = 30.0,
        pool_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 1.0,
        breaker_clock=time.monotonic,
    ) -> None:
        self.shard_map = shard_map
        self.estimator = estimator
        self.timeout = float(timeout)
        # Default policy = the historical behaviour exactly: one
        # immediate reconnect-and-retry, no backoff.
        self.retry = retry if retry is not None else RetryPolicy(max_retries=1)
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_reset = float(breaker_reset)
        self._breaker_clock = breaker_clock
        self._subsets: Tuple[Subset, ...] = tuple(
            tuple(int(i) for i in subset) for subset in shard_map.subsets
        )
        self._catalog: Set[Subset] = set(self._subsets)
        self._order: List[str] = [spec.shard_id for spec in shard_map.shards]
        self._handles: Dict[str, _ShardHandle] = {}
        self._active: Dict[str, int] = {}
        self._draining: Set[str] = set()
        self._cond = threading.Condition()
        # Shared scatter pool: one bounded executor serves every
        # fan-out, replacing a fresh thread per shard per request.  Two
        # slots per shard lets a second fan-out (dispatched by the
        # front-end RemoteServer's pool) overlap the first; beyond that
        # tasks queue — each task is a leaf (one wire call, no nested
        # submits), so queueing cannot deadlock.
        if pool_size is None:
            pool_size = min(32, 2 * max(1, len(self._order)))
        elif pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self._pool_size = int(pool_size)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._partition_cache: Dict[Subset, Optional[List[Subset]]] = {}
        self.checkpoint_path = (
            None if checkpoint_path is None else os.fspath(checkpoint_path)
        )
        if self.checkpoint_path is not None:
            shard_map.save(self.checkpoint_path)

    # -- membership ----------------------------------------------------
    def join(self, shard_id: str, host: str, port: int, token: str) -> None:
        """Admit (or re-admit) a shard worker at a live address."""
        if shard_id not in self._order:
            raise ValueError(
                f"unknown shard id {shard_id!r}; the shard map lists {self._order}"
            )
        handle = _ShardHandle(
            shard_id,
            host,
            port,
            token,
            self.timeout,
            CircuitBreaker(
                failure_threshold=self._breaker_threshold,
                reset_timeout=self._breaker_reset,
                clock=self._breaker_clock,
            ),
        )
        with self._cond:
            old = self._handles.pop(shard_id, None)
            self._handles[shard_id] = handle
            self._draining.discard(shard_id)
            self._cond.notify_all()
        if old is not None:
            old.close()

    def leave(self, shard_id: str, drain: bool = True) -> None:
        """Remove a shard from membership.

        With ``drain`` (default), marks the shard draining — new
        fan-outs refuse immediately — and waits for in-flight requests
        against it to finish before closing the connection.
        """
        with self._cond:
            handle = self._handles.get(shard_id)
            if handle is None:
                return
            self._draining.add(shard_id)
            if drain:
                while self._active.get(shard_id, 0) > 0:
                    self._cond.wait(timeout=1.0)
            self._handles.pop(shard_id, None)
            self._draining.discard(shard_id)
        handle.close()

    def live_shards(self) -> List[str]:
        """Shard ids currently joined (and not draining), in range order."""
        with self._cond:
            return [
                shard_id
                for shard_id in self._order
                if shard_id in self._handles and shard_id not in self._draining
            ]

    def breaker_states(self) -> Dict[str, dict]:
        """Per-shard circuit-breaker snapshots (the ``status`` ops surface).

        Shards that have left the membership report ``"absent"``.
        """
        with self._cond:
            handles = dict(self._handles)
        return {
            shard_id: (
                handles[shard_id].breaker.snapshot()
                if shard_id in handles
                else {"state": "absent"}
            )
            for shard_id in self._order
        }

    def close(self) -> None:
        with self._cond:
            handles = list(self._handles.values())
            self._handles.clear()
            pool, self._pool = self._pool, None
        for handle in handles:
            handle.close()
        if pool is not None:
            pool.shutdown(wait=False)

    # -- scatter-gather ------------------------------------------------
    def _snapshot(self) -> List[_ShardHandle]:
        """Pin every shard for one fan-out, or refuse if any is absent."""
        with self._cond:
            missing = [
                shard_id
                for shard_id in self._order
                if shard_id not in self._handles or shard_id in self._draining
            ]
            if missing:
                raise ShardUnavailableError(
                    f"shard {missing[0]!r} has left the cluster (or is draining); "
                    "exact answers need every shard — rejoin it and retry"
                )
            handles = [self._handles[shard_id] for shard_id in self._order]
            for shard_id in self._order:
                self._active[shard_id] = self._active.get(shard_id, 0) + 1
        return handles

    def _release(self, shard_id: str) -> None:
        with self._cond:
            self._active[shard_id] -= 1
            self._cond.notify_all()

    def _scatter_pool(self) -> ThreadPoolExecutor:
        """The shared fan-out executor, created on first multi-shard use."""
        with self._cond:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._pool_size, thread_name_prefix="repro-scatter"
                )
            return self._pool

    def _scatter(self, request: ShardPartialRequest) -> List[dict]:
        """One partial request to every shard; partials in range order.

        Fan-out rides the shared bounded pool (not a fresh thread per
        shard per request): per-request thread creation cost disappears
        from the scatter path, and total coordinator threads stay capped
        however many front-end requests are in flight.  Requests to the
        *same* shard still serialize on that shard's wire lock.

        The ambient request deadline (set by the front-end perimeter via
        the resilience contextvar) is captured *here*, on the dispatch
        thread, and handed to each shard call explicitly — pool threads
        do not inherit the context — so every hop's socket timeout
        shrinks to the remaining budget.
        """
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("fan-out")
        handles = self._snapshot()
        results: List[Optional[QueryResponse]] = [None] * len(handles)
        errors: List[Optional[BaseException]] = [None] * len(handles)

        def call(index: int, handle: _ShardHandle) -> None:
            try:
                results[index] = self._call_shard(handle, request, deadline)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors[index] = exc
            finally:
                self._release(handle.shard_id)

        if len(handles) == 1:
            call(0, handles[0])
        else:
            pool = self._scatter_pool()
            futures = [
                pool.submit(call, i, handle) for i, handle in enumerate(handles)
            ]
            for future in futures:
                future.result()  # call() never raises; this is the join
        for exc in errors:
            if exc is not None:
                raise exc
        return [response.result for response in results]

    def _call_shard(
        self,
        handle: _ShardHandle,
        request: ShardPartialRequest,
        deadline: Optional[Deadline] = None,
    ) -> QueryResponse:
        """Execute on one shard through its breaker and the retry policy.

        The shard's circuit breaker gates the call: an open circuit
        refuses immediately (no connection attempt, no backoff burn) and
        only the half-open probe reaches the wire until the shard proves
        healthy again.  A closed circuit admits the call, which then
        walks the retry policy's deterministic backoff schedule — each
        attempt on a fresh connection, each failure recorded against the
        breaker.  A worker restarted in place answers a retry; a dead
        one fails fast into :class:`ShardUnavailableError` — no hanging
        on a half-open socket.  A live ``deadline`` bounds every
        attempt's socket timeout and stops the backoff walk the moment
        the budget runs out.
        """
        breaker = handle.breaker
        if not breaker.allow():
            raise ShardUnavailableError(
                f"shard {handle.shard_id!r} at {handle.host}:{handle.port} has "
                "an open circuit after repeated failures; the next probe is "
                f"admitted {breaker.reset_timeout}s after it opened"
            )
        schedule = self.retry.schedule(handle.shard_id)
        first: Optional[BaseException] = None
        probe_pending = True
        try:
            with handle.lock:
                for attempt, backoff in enumerate((0.0,) + tuple(schedule)):
                    if backoff:
                        time.sleep(
                            backoff
                            if deadline is None
                            else min(backoff, deadline.remaining())
                        )
                    if deadline is not None and deadline.expired:
                        # Out of budget is the *request's* problem, not
                        # the shard's: no breaker failure is recorded.
                        raise DeadlineExceeded(
                            f"request deadline exceeded after {attempt} "
                            f"attempt(s) against shard {handle.shard_id!r}"
                        ) from first
                    try:
                        if attempt > 0 or handle.client is None:
                            handle.reconnect()
                        response = handle.client.execute(
                            request, deadline=deadline
                        )
                    except (OSError, EOFError) as exc:
                        if first is None:
                            first = exc
                        breaker.record_failure()
                        continue
                    breaker.record_success()
                    probe_pending = False
                    return response
        finally:
            # A half-open probe that exited abnormally (deadline hit
            # between attempts) must not leave the probe latch stuck.
            if probe_pending and first is None and breaker.state == "half_open":
                breaker.record_failure()
        retries = len(schedule)
        raise ShardUnavailableError(
            f"shard {handle.shard_id!r} at {handle.host}:{handle.port} is "
            f"unreachable after {'one retry' if retries == 1 else f'{retries} retries'} "
            f"({first}); rejoin it and retry the query"
        ) from first

    # -- the unified dispatch surface ----------------------------------
    def execute(self, request: QueryRequest) -> QueryResponse:
        """Answer one typed protocol request by exact scatter-gather."""
        handler = self._HANDLERS.get(request.kind)
        if handler is None:
            raise ProtocolError(
                "unknown_kind",
                f"unknown request kind {request.kind!r}; this engine answers "
                f"{sorted(self._HANDLERS)}",
            )
        return QueryResponse(kind=request.kind, result=handler(self, request))

    # -- reduction helpers ---------------------------------------------
    def _missing(self, key: Subset) -> MissingSketchError:
        return MissingSketchError(
            f"subset {key} was not sketched; available subsets: "
            f"{sorted(self._subsets)}"
        )

    def _estimates(
        self, key: Subset, values: Sequence[Tuple[int, ...]], delta: float = 0.05
    ) -> List[QueryEstimate]:
        """Global Algorithm 2 estimates from merged per-shard bit sums."""
        if key not in self._catalog:
            raise self._missing(key)
        partials = self._scatter(
            ShardPartialRequest.build("bit_sums", [key], [(value,) for value in values])
        )
        sums, num_users = merge_bit_sum_partials(partials, len(values))
        return [
            self.estimator.estimate_from_counts(bit_sum, num_users, delta=delta)
            for bit_sum in sums
        ]

    def _weight_counts(
        self,
        subsets: Sequence[Subset],
        groups: Sequence[Tuple[Tuple[int, ...], ...]],
    ) -> Tuple[np.ndarray, int]:
        """Merged integer weight histograms over the aligned users of
        ``subsets``; raises the single-store no-common-user ``ValueError``."""
        keys = [tuple(s) for s in subsets]
        partials = self._scatter(
            ShardPartialRequest.build("weight_counts", keys, groups)
        )
        counts, num_users = merge_weight_count_partials(
            partials, len(groups), len(keys)
        )
        if num_users == 0:
            raise ValueError(f"no user published sketches for all of {keys}")
        return counts, num_users

    def _require_partition(self, target: Subset) -> List[Subset]:
        # Unlocked memo: the catalog is frozen at construction, so the
        # check-then-set race between concurrent front-end dispatches
        # only recomputes the same deterministic partition.
        if target not in self._partition_cache:
            self._partition_cache[target] = search_exact_cover(target, self._subsets)
        partition = self._partition_cache[target]
        if partition is None:
            raise MissingSketchError(
                f"subset {target} is neither sketched nor a disjoint union of "
                f"sketched subsets; available: {sorted(self._subsets)}"
            )
        return partition

    # -- request handlers ----------------------------------------------
    def _exec_estimate_many(
        self, request: EstimateManyRequest
    ) -> List[QueryEstimate]:
        return self._estimates(request.subset, list(request.values))

    def _exec_marginal(self, request: MarginalRequest) -> np.ndarray:
        key = request.subset
        width = len(key)
        if width > 12:
            raise ValueError(
                f"a marginal over 2**{width} values is not sensible; "
                "query specific values instead"
            )
        candidates = [int_to_bits(v, width) for v in range(1 << width)]
        estimates = self._estimates(key, candidates)
        return np.asarray([e.fraction for e in estimates])

    def _exec_fraction(self, request: FractionRequest) -> float:
        key, value = request.subset, request.value
        if key in self._catalog:
            return self._estimates(key, [value])[0].fraction
        partition = self._require_partition(key)
        values = QueryEngine._project_value(key, value, partition)
        counts, num_users = self._weight_counts(partition, [tuple(values)])
        combined = combine_from_weight_counts(
            counts[0], num_users, self.estimator.params.p
        )
        return combined.clamped_fraction

    def _exec_counts_block(self, request: CountsBlockRequest) -> List[float]:
        key = request.subset
        value_ts = list(request.values)
        if key in self._catalog:
            return [estimate.count for estimate in self._estimates(key, value_ts)]
        if not value_ts:
            return []
        partition = self._require_partition(key)
        # projections[j] = value j projected onto the partition pieces;
        # the pieces travel in the partial request itself, so workers
        # never re-derive the partition (and cannot disagree about it
        # when their local subset inventories differ).
        projections = [
            tuple(QueryEngine._project_value(key, value_t, partition))
            for value_t in value_ts
        ]
        counts, num_users = self._weight_counts(partition, projections)
        p = self.estimator.params.p
        return [
            combine_from_weight_counts(counts[j], num_users, p).clamped_fraction
            * num_users
            for j in range(len(value_ts))
        ]

    def _exec_any_of(self, request: AnyOfRequest) -> float:
        if not request.queries:
            raise ValueError("need at least one conjunction")
        subsets = [subset for subset, _value in request.queries]
        for subset in subsets:
            if subset not in self._catalog:
                raise MissingSketchError(
                    f"subset {subset} was not sketched; disjunctions need "
                    "each component's subset published directly"
                )
        group = tuple(value for _subset, value in request.queries)
        counts, num_users = self._weight_counts(subsets, [group])
        combined = combine_from_weight_counts(
            counts[0], num_users, self.estimator.params.p
        )
        # Matches disjunction_fraction_from_bits(..., clamp=True).
        fraction = 1.0 - combined.none_fraction
        return min(1.0, max(0.0, fraction))

    def _check_positions(self, positions: Sequence[int]) -> List[Subset]:
        subsets = [(int(pos),) for pos in positions]
        for subset in subsets:
            if subset not in self._catalog:
                raise MissingSketchError(
                    f"bit {subset[0]} was not sketched individually; "
                    "use a per-bit publishing policy"
                )
        return subsets

    def _exec_bit_matrix(self, request: BitMatrixRequest) -> np.ndarray:
        subsets = self._check_positions(request.positions)
        target_t = (int(request.target),)
        keys = [tuple(s) for s in subsets]
        partials = self._scatter(
            ShardPartialRequest.build(
                "matrix_rows", keys, [tuple(target_t for _ in keys)]
            )
        )
        matrix = merge_matrix_partials(partials, len(keys))
        if matrix is None:
            raise ValueError(f"no user published sketches for all of {keys}")
        return matrix

    def _exec_exactly_l(self, request: ExactlyLRequest) -> float:
        subsets = self._check_positions(request.positions)
        k = len(subsets)
        counts, num_users = self._weight_counts(
            subsets, [tuple((1,) for _ in subsets)]
        )
        # Gathering precedes the l-range check, matching the single-store
        # engine (which builds the bit matrix first).
        if not 0 <= request.l <= k:
            raise ValueError(f"l must be in [0, {k}], got {request.l}")
        combined = combine_from_weight_counts(
            counts[0], num_users, self.estimator.params.p
        )
        return float(combined.weight_distribution[request.l])

    def _exec_evaluate_plan(self, request: EvaluatePlanRequest) -> float:
        return evaluate_plan(
            request.to_plan(), self.count, block_count_fn=self.counts_block
        )

    #: kind -> handler; mirrors QueryEngine._HANDLERS key for key, so
    #: unknown-kind errors render identically too.
    _HANDLERS = {
        CountsBlockRequest.kind: _exec_counts_block,
        EstimateManyRequest.kind: _exec_estimate_many,
        MarginalRequest.kind: _exec_marginal,
        FractionRequest.kind: _exec_fraction,
        AnyOfRequest.kind: _exec_any_of,
        ExactlyLRequest.kind: _exec_exactly_l,
        BitMatrixRequest.kind: _exec_bit_matrix,
        EvaluatePlanRequest.kind: _exec_evaluate_plan,
    }

    # -- thin public wrappers (same convenience surface as QueryEngine) -
    def estimate(
        self, subset: Sequence[int], value: Sequence[int]
    ) -> QueryEstimate:
        return self.estimate_many(subset, [value])[0]

    def estimate_many(
        self, subset: Sequence[int], values: Sequence[Sequence[int]]
    ) -> List[QueryEstimate]:
        return list(self.execute(EstimateManyRequest.build(subset, values)).result)

    def marginal(self, subset: Sequence[int]) -> np.ndarray:
        return np.asarray(self.execute(MarginalRequest.build(subset)).result)

    def fraction(self, subset: Sequence[int], value: Sequence[int]) -> float:
        return self.execute(FractionRequest.build(subset, value)).result

    def count(self, subset: Sequence[int], value: Sequence[int]) -> float:
        return self.counts_block(subset, [value])[0]

    def counts_block(
        self, subset: Sequence[int], values: Sequence[Tuple[int, ...]]
    ) -> List[float]:
        return list(self.execute(CountsBlockRequest.build(subset, values)).result)

    def conjunction(self, query: Conjunction) -> float:
        return self.fraction(query.subset, query.value)

    def any_of(self, queries: Sequence[Conjunction]) -> float:
        if not queries:
            raise ValueError("need at least one conjunction")
        return self.execute(
            AnyOfRequest.build([(q.subset, q.value) for q in queries])
        ).result

    def bit_matrix(self, positions: Sequence[int], target: int = 1) -> np.ndarray:
        return self.execute(BitMatrixRequest.build(positions, target)).result

    def exactly_l(self, positions: Sequence[int], l: int) -> float:
        return self.execute(ExactlyLRequest.build(positions, l)).result

    def evaluate(self, plan: LinearPlan) -> float:
        return self.execute(EvaluatePlanRequest.from_plan(plan)).result


# ----------------------------------------------------------------------
# The process supervisor
# ----------------------------------------------------------------------
def _preferred_context() -> multiprocessing.context.BaseContext:
    """fork where available (same choice as publish_database: cheap,
    no re-import per worker), spawn elsewhere — worker payloads are
    spawn-safe primitives either way."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ShardedService:
    """Supervisor: shard stores on disk, one worker process each, a
    coordinator in front.

    The deployment harness the CLI, tests, and benchmarks share.
    Directory layout under ``base_dir``::

        shard-<i>.npz      per-shard columnar v2 store
        shard_map.json     atomic shard-map checkpoint (crash recovery)
        ready/<shard_id>   worker address handshake files
        cache/<shard_id>/  per-worker persistent cache root (opt-in)

    Build with :meth:`from_store` (splits and lays the directory out) or
    :meth:`from_checkpoint` (crash recovery: reattaches to the shard
    stores a previous supervisor left behind — with per-worker caching
    restored from the checkpointed cache state, so recovered workers
    rejoin *warm*), then :meth:`start` to spawn workers and join them
    into the coordinator.  Context-manager friendly;
    :func:`sharded_service` wraps the whole lifecycle.

    With ``watchdog_interval`` set, a daemon **watchdog** thread probes
    every worker each interval — process liveness plus a ``ping``
    request over a short-lived connection (a worker that accepts but
    never answers within ``watchdog_probe_timeout`` seconds counts as
    *hung*) — and auto-restarts failed workers from their checkpointed
    stores, up to ``watchdog_max_restarts`` times per shard.  Every
    probe failure, restart, and give-up is appended to :attr:`events`
    (a structured, in-order log); restarted workers reuse their
    persistent cache directory, so they rejoin warm with zero operator
    action.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        prf,
        base_dir: str | os.PathLike,
        *,
        cache: bool = False,
        cache_budget_bytes: int | None = None,
        timeout: float = 30.0,
        token: str = "shard-internal",
        pool_size: int | None = None,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 1.0,
        watchdog_interval: float | None = None,
        watchdog_max_restarts: int = 3,
        watchdog_probe_timeout: float = 2.0,
    ) -> None:
        self.shard_map = shard_map
        self.prf = prf
        self.base_dir = os.fspath(base_dir)
        self._cache = bool(cache)
        self._cache_budget = cache_budget_bytes
        self._token = token
        self._processes: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._addresses: Dict[str, Tuple[str, int]] = {}
        # Lifecycle lock: spawn/kill/restart/close are called from both
        # the owning thread and the watchdog; reentrant because the
        # watchdog sweep holds it across restart_shard.
        self._lifecycle = threading.RLock()
        self.events: List[dict] = []
        self._events_lock = threading.Lock()
        self._watchdog_interval = watchdog_interval
        self._watchdog_max_restarts = int(watchdog_max_restarts)
        self._watchdog_probe_timeout = float(watchdog_probe_timeout)
        self._watchdog_stop = threading.Event()
        self._watchdog_thread: Optional[threading.Thread] = None
        self._restarts: Dict[str, int] = {}
        self._gave_up: Set[str] = set()
        estimator = SketchEstimator(PrivacyParams(p=prf.p), prf)
        self.coordinator = ShardCoordinator(
            shard_map,
            estimator,
            checkpoint_path=os.path.join(self.base_dir, "shard_map.json"),
            timeout=timeout,
            pool_size=pool_size,
            retry=retry,
            breaker_threshold=breaker_threshold,
            breaker_reset=breaker_reset,
        )

    @classmethod
    def from_store(
        cls, store, prf, n_shards: int, base_dir: str | os.PathLike, **kwargs
    ) -> "ShardedService":
        """Split ``store`` into ``n_shards`` and lay out the service
        directory.  Does not start workers — call :meth:`start`."""
        base_dir = os.fspath(base_dir)
        os.makedirs(base_dir, exist_ok=True)
        shards = store.split_by_user_range(n_shards)
        specs = []
        for index, shard in enumerate(shards):
            store_path = os.path.join(base_dir, f"shard-{index}.npz")
            save_store(
                shard, store_path, include_iterations=True, format="columnar", prf=prf
            )
            universe = user_universe(shard.to_columns())
            specs.append(
                ShardSpec(
                    shard_id=f"shard-{index}",
                    store_path=store_path,
                    num_users=len(universe),
                    first_user=universe[0] if universe else "",
                    last_user=universe[-1] if universe else "",
                )
            )
        shard_map = ShardMap(subsets=tuple(store.subsets), shards=tuple(specs))
        return cls(shard_map, prf, base_dir, **kwargs)

    @classmethod
    def from_checkpoint(
        cls, base_dir: str | os.PathLike, prf, **kwargs
    ) -> "ShardedService":
        """Crash recovery: rebuild the supervisor from the checkpointed
        shard map, reattaching to the shard stores already on disk.

        The warm-rejoin contract: when the checkpoint records persistent
        cache state (:attr:`ShardMap.cache_state`) and the caller does
        not override it, caching is re-enabled with the recorded budget —
        recovered workers reattach to their cache-generation directories
        and answer repeat queries without a single new PRF call, with
        zero operator action.
        """
        base_dir = os.fspath(base_dir)
        shard_map = ShardMap.load(os.path.join(base_dir, "shard_map.json"))
        state = shard_map.cache_state
        if state is not None and state.get("enabled") and "cache" not in kwargs:
            kwargs["cache"] = True
            if state.get("budget_bytes") is not None:
                kwargs.setdefault("cache_budget_bytes", int(state["budget_bytes"]))
        return cls(shard_map, prf, base_dir, **kwargs)

    # -- lifecycle ------------------------------------------------------
    def start(self, timeout: float = 30.0) -> "ShardedService":
        """Spawn every shard worker, wait for each to bind, join them all."""
        with self._lifecycle:
            for spec in self.shard_map.shards:
                self._spawn(spec)
            for spec in self.shard_map.shards:
                host, port = self._wait_ready(spec, timeout)
                self._addresses[spec.shard_id] = (host, port)
                self.coordinator.join(spec.shard_id, host, port, self._token)
            self.checkpoint()
        if self._watchdog_interval is not None and self._watchdog_thread is None:
            self._watchdog_stop.clear()
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop, daemon=True, name="repro-watchdog"
            )
            self._watchdog_thread.start()
        return self

    # -- cache-state checkpoint (the warm-rejoin contract) --------------
    def _collect_cache_state(self) -> Optional[dict]:
        """Per-shard cache-generation metadata, or ``None`` when caching
        is off.  A *generation* is one ``store-<hash>/`` directory the
        worker's :class:`~repro.server.engine.SketchEvaluationCache`
        populated; recording them alongside the shard map is what lets a
        recovered supervisor prove its workers rejoined warm."""
        if not self._cache:
            return None
        generations: Dict[str, List[str]] = {}
        for spec in self.shard_map.shards:
            root = os.path.join(self.base_dir, "cache", spec.shard_id)
            try:
                generations[spec.shard_id] = sorted(
                    name
                    for name in os.listdir(root)
                    if name.startswith("store-")
                )
            except OSError:
                generations[spec.shard_id] = []
        return {
            "enabled": True,
            "budget_bytes": self._cache_budget,
            "generations": generations,
        }

    def checkpoint(self) -> None:
        """Re-save the shard map with current persistent-cache metadata."""
        self.shard_map = replace(
            self.shard_map, cache_state=self._collect_cache_state()
        )
        self.shard_map.save(os.path.join(self.base_dir, "shard_map.json"))

    # -- the watchdog ---------------------------------------------------
    def _log_event(self, kind: str, shard_id: Optional[str] = None, **detail) -> None:
        event = {
            "time": time.time(),
            "monotonic": time.monotonic(),
            "event": kind,
            "shard_id": shard_id,
        }
        event.update(detail)
        with self._events_lock:
            self.events.append(event)

    def _probe(self, shard_id: str) -> Optional[str]:
        """One health probe; ``None`` = healthy, else the failure reason.

        Two layers: the process must be alive, *and* a ``ping`` over a
        fresh connection must answer within the probe timeout — a worker
        stopped mid-schedule (SIGSTOP, a wedged GIL) is alive by the
        first test and hung by the second.
        """
        process = self._processes.get(shard_id)
        if process is None or not process.is_alive():
            return "dead"
        address = self._addresses.get(shard_id)
        if address is None:
            return "unaddressed"
        try:
            client = RemoteQueryEngine(
                address[0],
                address[1],
                self._token,
                timeout=self._watchdog_probe_timeout,
            )
            try:
                client.ping()
            finally:
                client.close()
        except Exception:  # noqa: BLE001 - any probe failure means unhealthy
            return "hung"
        return None

    def _watchdog_loop(self) -> None:
        while not self._watchdog_stop.wait(self._watchdog_interval):
            self._sweep()

    def _sweep(self) -> None:
        """One watchdog pass: probe every shard, restart the unhealthy."""
        for spec in self.shard_map.shards:
            if self._watchdog_stop.is_set():
                return
            shard_id = spec.shard_id
            if shard_id in self._gave_up:
                continue
            reason = self._probe(shard_id)
            if reason is None:
                continue
            self._log_event("probe_failed", shard_id, reason=reason)
            with self._lifecycle:
                if self._restarts.get(shard_id, 0) >= self._watchdog_max_restarts:
                    self._gave_up.add(shard_id)
                    self._log_event(
                        "gave_up",
                        shard_id,
                        restarts=self._restarts.get(shard_id, 0),
                    )
                    continue
                self._restarts[shard_id] = self._restarts.get(shard_id, 0) + 1
                try:
                    self.restart_shard(shard_id)
                except Exception as exc:  # noqa: BLE001 - logged, next sweep retries
                    self._log_event("restart_failed", shard_id, error=str(exc))
                else:
                    self._log_event(
                        "restarted", shard_id, restarts=self._restarts[shard_id]
                    )

    def _ready_path(self, shard_id: str) -> str:
        return os.path.join(self.base_dir, "ready", shard_id)

    def _spawn(self, spec: ShardSpec) -> None:
        os.makedirs(os.path.join(self.base_dir, "ready"), exist_ok=True)
        ready_path = self._ready_path(spec.shard_id)
        with contextlib.suppress(FileNotFoundError):
            os.unlink(ready_path)
        config = {
            "store_path": spec.store_path,
            "prf_spec": self.prf.spec(),
            "ready_path": ready_path,
            "token": self._token,
            "cache_dir": (
                os.path.join(self.base_dir, "cache", spec.shard_id)
                if self._cache
                else None
            ),
            "cache_budget_bytes": self._cache_budget,
        }
        process = _preferred_context().Process(
            target=run_shard_worker,
            args=(config,),
            daemon=True,
            name=f"repro-{spec.shard_id}",
        )
        process.start()
        self._processes[spec.shard_id] = process

    def _wait_ready(self, spec: ShardSpec, timeout: float) -> Tuple[str, int]:
        ready_path = self._ready_path(spec.shard_id)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(ready_path):
                with open(ready_path, "r", encoding="utf-8") as handle:
                    text = handle.read().strip()
                if text:
                    host, port = text.split()
                    return host, int(port)
            process = self._processes.get(spec.shard_id)
            if process is not None and not process.is_alive():
                raise RuntimeError(
                    f"shard worker {spec.shard_id!r} exited before binding "
                    f"(exit code {process.exitcode})"
                )
            time.sleep(0.02)
        raise RuntimeError(
            f"shard worker {spec.shard_id!r} did not report ready within {timeout}s"
        )

    def kill_shard(self, shard_id: str) -> None:
        """Fault injection: SIGKILL one worker, leaving membership as-is
        so the next query exercises the coordinator's retry path."""
        with self._lifecycle:
            process = self._processes[shard_id]
            process.kill()
            process.join(timeout=10.0)

    def restart_shard(self, shard_id: str, timeout: float = 30.0) -> None:
        """Respawn a worker from its checkpointed store and rejoin it.

        The worker reuses its persistent cache directory (when caching
        is on), so it comes back **warm**: repeat queries hit the cache
        and cost no new PRF calls.  Rejoining creates a fresh shard
        handle, so the shard's circuit breaker restarts closed.
        """
        with self._lifecycle:
            spec = next(
                spec for spec in self.shard_map.shards if spec.shard_id == shard_id
            )
            old = self._processes.get(shard_id)
            if old is not None and old.is_alive():
                old.kill()
                old.join(timeout=10.0)
            self.coordinator.leave(shard_id, drain=False)
            self._spawn(spec)
            host, port = self._wait_ready(spec, timeout)
            self._addresses[shard_id] = (host, port)
            self.coordinator.join(shard_id, host, port, self._token)
            self.checkpoint()

    def close(self) -> None:
        # Stop the watchdog first: a sweep racing the teardown would
        # faithfully "restart" every worker we are about to kill.
        self._watchdog_stop.set()
        thread, self._watchdog_thread = self._watchdog_thread, None
        if thread is not None:
            thread.join(timeout=10.0)
        with self._lifecycle:
            self.coordinator.close()
            for process in self._processes.values():
                if process.is_alive():
                    process.terminate()
            for process in self._processes.values():
                process.join(timeout=10.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.kill()
                    process.join(timeout=5.0)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@contextlib.contextmanager
def sharded_service(
    store, prf, n_shards: int, base_dir: str | os.PathLike, **kwargs
):
    """Split ``store``, start the workers, yield the running service,
    and always tear the worker processes down on exit."""
    service = ShardedService.from_store(store, prf, n_shards, base_dir, **kwargs)
    try:
        yield service.start()
    finally:
        service.close()
