"""Horizontally sharded store serving: shard workers + a scatter-gather coordinator.

One process serving one mmap'd columnar store stops scaling when the
user population outgrows a single machine's memory.  This module
partitions the store by **contiguous user range** (see
:mod:`repro.core.partition`), runs each shard as its own worker process
— a plain :class:`~repro.server.engine.QueryEngine` over the shard's
store, with its own persistent cache — and puts a
:class:`ShardCoordinator` in front that speaks the typed query protocol
unchanged.

Why the sharded answers are *bit-identical*, not merely close:

* Every query family bottoms out in integer sufficient statistics —
  bit sums, Hamming-weight histograms, or aligned matrix rows — and
  integers from disjoint user ranges recombine exactly
  (:mod:`repro.queries.reduction`).
* The coordinator re-runs the single-store float arithmetic **once**,
  on the merged integers: ``sum/M`` is the same correctly-rounded
  float64 division ``np.mean`` performs, and the merged weight
  histogram feeds the same ``np.linalg.solve`` Appendix F uses
  (:meth:`SketchEstimator.estimate_from_counts`,
  :func:`~repro.core.combine.combine_from_weight_counts`).
* Contiguous ranges of the *sorted* user universe keep each shard's
  aligned order a contiguous run of the single-store aligned order, so
  ``bit_matrix`` rows concatenate back exactly.

Shard workers host a :class:`ShardWorkerEngine` behind the stock
:class:`~repro.server.remote.RemoteServer`: the public query kinds
still work against any single shard, and one extra shard-internal kind
(``shard_partial``, :class:`~repro.protocol.messages.ShardPartialRequest`)
serves the partial statistics.  The coordinator tracks membership
(join/leave with request draining), retries a failed shard once on a
fresh connection, and otherwise raises :class:`ShardUnavailableError` —
which the protocol layer maps to the structured ``shard_unavailable``
error envelope, so a remote analyst sees a typed error, never a hang or
a traceback.  The shard map is checkpointed atomically
(:meth:`ShardMap.save`) for crash recovery
(:meth:`ShardedService.from_checkpoint`).
"""

from __future__ import annotations

import collections
import contextlib
import io
import json
import multiprocessing
import os
import re
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.combine import combine_from_weight_counts
from ..core.estimator import QueryEstimate, SketchEstimator
from ..core.params import PrivacyParams
from ..core.partition import merge_columns, split_columns_at, user_universe
from ..core.prf import prf_from_spec
from ..data.encoding import int_to_bits
from ..protocol.envelope import ProtocolError
from ..protocol.messages import (
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    EvaluatePlanRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
    PingRequest,
    QueryRequest,
    QueryResponse,
    RebalanceMergeRequest,
    RebalanceSplitRequest,
    RebalanceStatusRequest,
    ShardAdoptRequest,
    ShardDropRequest,
    ShardPartialRequest,
    ShardSnapshotRequest,
)
from ..queries.ast import Conjunction
from ..queries.conjunctive import LinearPlan, evaluate_plan
from ..queries.reduction import (
    merge_bit_sum_partials,
    merge_matrix_partials,
    merge_weight_count_partials,
)
from .collector import SketchStore
from .engine import MissingSketchError, QueryEngine, search_exact_cover
from .remote import RemoteQueryEngine, RemoteServer
from .resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    current_deadline,
)
from .serialization import load_store, save_store

__all__ = [
    "SHARD_ANALYST",
    "ShardCoordinator",
    "ShardMap",
    "ShardSpec",
    "ShardUnavailableError",
    "ShardWorkerEngine",
    "ShardedService",
    "run_shard_worker",
    "sharded_service",
]

Subset = Tuple[int, ...]

SHARD_MAP_FORMAT = "repro-shard-map"
#: Version written by this build.  v2 adds the optional ``rebalance``
#: record (the two-phase handoff checkpoint); v1 checkpoints — written
#: before live rebalancing existed — still load unchanged.
SHARD_MAP_VERSION = 2
_SHARD_MAP_READ_VERSIONS = (1, 2)

#: Test injection point for the crash-durable write path: called with
#: the destination path after the temp file is written and fsync'd but
#: *before* the atomic rename.  A hook that raises models power loss at
#: the worst moment — the regression suite asserts the previous
#: checkpoint survives intact.
_write_crash_hook: Optional[Callable[[str], None]] = None


def _fsync_directory(path: str) -> None:
    """Best-effort directory fsync so the rename itself is durable.

    Skipped silently where directories cannot be opened for reading
    (some filesystems / platforms) — the entry rename is still atomic,
    this only narrows the window where the *rename* could be lost.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)


def _durable_replace_bytes(path: str, payload: bytes) -> None:
    """Crash-durable atomic file write: temp + flush + fsync + rename.

    ``os.replace`` alone guarantees readers never see a partial file,
    but not that the *contents* reached disk before the rename — a
    power loss could leave an atomically-renamed zero-length
    "checkpoint".  Fsyncing the temp file first (and the directory
    after, where cheap) closes that hole: after this returns, either
    the old file or the complete new one survives a crash.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        if _write_crash_hook is not None:
            _write_crash_hook(path)
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise
    _fsync_directory(directory)

#: Bearer identity the coordinator presents on shard-internal
#: connections.  Workers bind to loopback and serve partial statistics
#: of already-public sketches, so the name is an identity, not a
#: secret; a deployment exposing workers beyond localhost must front
#: them with real per-analyst tokens instead.
SHARD_ANALYST = "shard-coordinator"


class ShardUnavailableError(RuntimeError):
    """A shard required for an exact answer cannot be reached.

    Raised by the coordinator after its single retry fails, or when a
    shard has left the membership and not rejoined.  Counting queries
    reduce exactly only over *all* shards, so a partial answer would be
    silently wrong — the coordinator refuses instead.  Maps to the
    ``shard_unavailable`` structured error envelope on the wire; the
    query is safe to retry once the shard rejoins.
    """


# ----------------------------------------------------------------------
# The checkpointable shard map
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard's durable description: identity, store file, user range."""

    shard_id: str
    store_path: str
    num_users: int
    first_user: str  # "" for an empty shard
    last_user: str


@dataclass(frozen=True)
class ShardMap:
    """The coordinator's durable view of the cluster.

    Carries the **original** store's subset catalog (in publication
    order — the exact-cover search is order-sensitive, and error
    messages list it) plus one :class:`ShardSpec` per shard in user-range
    order.  :meth:`save` writes atomically (temp file + ``os.replace``)
    so a crash mid-checkpoint leaves the previous map intact;
    :meth:`load` refuses truncated or foreign files with ``ValueError``.
    """

    subsets: Tuple[Subset, ...]
    shards: Tuple[ShardSpec, ...]
    #: Optional persistent-cache metadata checkpointed alongside the map
    #: (see :meth:`ShardedService.checkpoint`): whether per-worker caches
    #: are enabled, their byte budget, and the cache-generation
    #: directories each worker had populated.  ``None`` ≡ no cache state
    #: recorded — the field is omitted from the JSON, so pre-resilience
    #: checkpoints load unchanged.
    cache_state: Optional[dict] = None
    #: Optional in-flight rebalance record (shard-map v2): the two-phase
    #: handoff checkpoint.  ``None`` between rebalances.  When present,
    #: carries ``op`` (``"split"``/``"merge"``), ``phase`` (``"prepared"``
    #: or ``"acked"``), the participants, the boundary, the *pending*
    #: shard specs the commit will install, and the file sets recovery
    #: needs: ``pending_paths`` (created by this rebalance — deleted on
    #: rollback) and ``obsolete_paths`` (superseded at commit — deleted
    #: on roll-forward).  Recovery is pure: a ``prepared`` record rolls
    #: back, an ``acked`` record rolls forward, both from this record
    #: alone (:meth:`ShardedService.from_checkpoint`).
    rebalance: Optional[dict] = None

    def save(self, path: str | os.PathLike) -> None:
        """Atomically and *durably* checkpoint the map as JSON.

        The write is crash-durable (temp + fsync + rename, see
        :func:`_durable_replace_bytes`): this file is the commit point
        of the two-phase rebalance protocol, so "renamed but never hit
        the platter" would be a correctness bug, not a performance
        detail.
        """
        path = os.fspath(path)
        payload = {
            "format": SHARD_MAP_FORMAT,
            "version": SHARD_MAP_VERSION,
            "subsets": [list(subset) for subset in self.subsets],
            "shards": [
                {
                    "shard_id": spec.shard_id,
                    "store_path": spec.store_path,
                    "num_users": spec.num_users,
                    "first_user": spec.first_user,
                    "last_user": spec.last_user,
                }
                for spec in self.shards
            ],
        }
        if self.cache_state is not None:
            payload["cache_state"] = self.cache_state
        if self.rebalance is not None:
            payload["rebalance"] = self.rebalance
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        text = json.dumps(payload, indent=2)
        _durable_replace_bytes(path, text.encode("utf-8"))

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ShardMap":
        """Load a checkpoint, refusing anything malformed with ``ValueError``."""
        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ValueError(f"unreadable shard-map checkpoint {path}: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"truncated or corrupt shard-map checkpoint {path}: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("format") != SHARD_MAP_FORMAT:
            raise ValueError(
                f"not a shard-map checkpoint: {path} "
                f"(format tag {data.get('format') if isinstance(data, dict) else data!r})"
            )
        if data.get("version") not in _SHARD_MAP_READ_VERSIONS:
            raise ValueError(
                f"unsupported shard-map version {data.get('version')!r} in {path}; "
                f"this build reads versions {list(_SHARD_MAP_READ_VERSIONS)}"
            )
        try:
            subsets = tuple(tuple(int(i) for i in s) for s in data["subsets"])
            shards = tuple(
                ShardSpec(
                    shard_id=str(entry["shard_id"]),
                    store_path=str(entry["store_path"]),
                    num_users=int(entry["num_users"]),
                    first_user=str(entry["first_user"]),
                    last_user=str(entry["last_user"]),
                )
                for entry in data["shards"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed shard-map checkpoint {path}: {exc}") from exc
        cache_state = data.get("cache_state")
        if cache_state is not None and not isinstance(cache_state, dict):
            raise ValueError(
                f"malformed shard-map checkpoint {path}: cache_state must be "
                f"an object, got {type(cache_state).__name__}"
            )
        rebalance = data.get("rebalance")
        if rebalance is not None and not isinstance(rebalance, dict):
            raise ValueError(
                f"malformed shard-map checkpoint {path}: rebalance must be "
                f"an object, got {type(rebalance).__name__}"
            )
        return cls(
            subsets=subsets,
            shards=shards,
            cache_state=cache_state,
            rebalance=rebalance,
        )


def _spec_to_payload(spec: ShardSpec) -> dict:
    return {
        "shard_id": spec.shard_id,
        "store_path": spec.store_path,
        "num_users": spec.num_users,
        "first_user": spec.first_user,
        "last_user": spec.last_user,
    }


def _spec_from_payload(entry: dict) -> ShardSpec:
    return ShardSpec(
        shard_id=str(entry["shard_id"]),
        store_path=str(entry["store_path"]),
        num_users=int(entry["num_users"]),
        first_user=str(entry["first_user"]),
        last_user=str(entry["last_user"]),
    )


# ----------------------------------------------------------------------
# Handoff files: durable store snapshots + warm-cache sidecars
# ----------------------------------------------------------------------
def _durable_save_store(store, path: str, prf) -> None:
    """Write a columnar store file atomically and crash-durably.

    ``save_store`` writes in place; rebalance store files must instead
    appear all-or-nothing *and* be on the platter before the checkpoint
    that references them is written — an "acked" record whose files
    evaporated in a crash could not roll forward.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    os.close(fd)
    try:
        save_store(store, tmp_path, include_iterations=True, format="columnar", prf=prf)
        with open(tmp_path, "rb") as handle:
            os.fsync(handle.fileno())
        if _write_crash_hook is not None:
            _write_crash_hook(path)
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise
    _fsync_directory(directory)


def _save_warm_sidecar(path: str, entries: Dict[tuple, np.ndarray]) -> int:
    """Persist carved warm-cache entries next to a handoff store.

    ``entries`` maps ``(subset, value)`` to the per-user evaluation
    slice (in the handoff store's publication order for that subset).
    Stored as an ``.npz`` with a JSON index member so the loader never
    has to parse structure out of array names.  Returns the entry count.
    """
    index = []
    arrays: Dict[str, np.ndarray] = {}
    for i, ((subset, value), bits) in enumerate(sorted(entries.items())):
        name = f"e{i}"
        index.append({"subset": list(subset), "value": list(value), "name": name})
        arrays[name] = np.ascontiguousarray(np.asarray(bits, dtype=np.int8))
    buffer = io.BytesIO()
    np.savez(
        buffer,
        __index__=np.frombuffer(
            json.dumps(index).encode("utf-8"), dtype=np.uint8
        ).copy(),
        **arrays,
    )
    _durable_replace_bytes(path, buffer.getvalue())
    return len(index)


def _load_warm_sidecar(path: str) -> Dict[tuple, np.ndarray]:
    """Load a warm sidecar; an unreadable or corrupt file loads empty.

    Warmth is an optimisation, never a correctness input — a worker
    that cannot read its sidecar simply starts cold for those entries.
    """
    entries: Dict[tuple, np.ndarray] = {}
    try:
        with np.load(path) as archive:
            index = json.loads(bytes(archive["__index__"]).decode("utf-8"))
            for record in index:
                key = (
                    tuple(int(i) for i in record["subset"]),
                    tuple(int(v) for v in record["value"]),
                )
                entries[key] = np.ascontiguousarray(
                    np.asarray(archive[record["name"]], dtype=np.int8)
                )
    except Exception:  # noqa: BLE001 - warmth only; cold is always correct
        return {}
    return entries


# ----------------------------------------------------------------------
# The shard worker: QueryEngine + the partial-statistics op
# ----------------------------------------------------------------------
class _ReadWriteGate:
    """Tiny writer-preference RW gate for the worker's store swap.

    Queries (and snapshots — pure reads) share the gate; the two
    mutating rebalance ops (``shard_adopt``/``shard_drop``) take it
    exclusively, so a fan-out partial can never observe a half-swapped
    store.  Writers are rare (one per rebalance) and fast (an in-memory
    store swap), so readers block for microseconds, not milliseconds.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()



class ShardWorkerEngine:
    """One shard's engine: a plain :class:`QueryEngine` plus ``shard_partial``.

    Delegates every public query kind to the wrapped engine (a single
    shard is a perfectly good single-store server for its own user
    range) and answers the shard-internal
    :class:`~repro.protocol.messages.ShardPartialRequest` with integer
    sufficient statistics computed through the same cached-column paths
    the engine's own handlers use — so coordinator reductions reuse the
    shard's persistent cache exactly like local queries do.

    A shard holding no publisher of a requested subset, or no user
    aligned across all requested subsets, returns a zero partial
    (``num_users = 0``) rather than an error: whether a subset is
    missing *globally* is the coordinator's call against the full
    catalog.
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        cache_dir: str | os.PathLike | None = None,
        cache_budget_bytes: int | None = None,
    ) -> None:
        self.engine = engine
        # The RemoteServer perimeter reads `.estimator.params` when a
        # privacy budget is configured, and the `status` request kind
        # reads `.cache.stats`; expose the same surface.
        self.estimator = engine.estimator
        self.cache = engine.cache
        # Rebalance ops replace the store wholesale and rebuild the
        # cache (a cache directory is content-addressed to one store),
        # so the ctor arguments must be reproducible here.
        self._cache_dir = cache_dir
        self._cache_budget_bytes = cache_budget_bytes
        self._gate = _ReadWriteGate()
        # One staged (op, token, store, carry) tuple from a rebalance
        # ``prepare`` stage, awaiting its ``commit``.  In-memory only:
        # a crash discards it, and recovery works from the checkpointed
        # files alone.
        self._staged: Optional[tuple] = None

    def execute(self, request: QueryRequest) -> QueryResponse:
        if request.kind in (ShardAdoptRequest.kind, ShardDropRequest.kind):
            handler = (
                self._adopt if request.kind == ShardAdoptRequest.kind else self._drop
            )
            # ``prepare`` only reads the live store (the worker keeps
            # serving its current range from it); ``commit`` is the
            # engine swap and needs the write side of the gate.
            gate = (
                self._gate.read()
                if request.stage == "prepare"
                else self._gate.write()
            )
            with gate:
                return QueryResponse(kind=request.kind, result=handler(request))
        with self._gate.read():
            if request.kind == ShardSnapshotRequest.kind:
                return QueryResponse(kind=request.kind, result=self._snapshot(request))
            if request.kind == ShardPartialRequest.kind:
                return QueryResponse(kind=request.kind, result=self._partial(request))
            return self.engine.execute(request)

    # -- rebalance ops (service → worker; not on the analyst surface) --
    def _range_masks(
        self, columns: dict, boundary: str
    ) -> Dict[Subset, np.ndarray]:
        """Per-subset boolean masks of publishers with ``user < boundary``."""
        return {
            subset: np.fromiter(
                (uid < boundary for uid in column.user_ids),
                dtype=bool,
                count=len(column.user_ids),
            )
            for subset, column in columns.items()
        }

    def _warm_entries(
        self, columns: dict, keep: Optional[Dict[Subset, np.ndarray]]
    ) -> Dict[tuple, np.ndarray]:
        """Full-length cache entries, optionally sliced by ``keep`` masks."""
        carved: Dict[tuple, np.ndarray] = {}
        for (subset, value), bits in self.cache.entries_snapshot().items():
            if subset not in columns:
                continue
            if keep is None:
                carved[(subset, value)] = bits
                continue
            mask = keep.get(subset)
            if mask is None or not mask.any():
                continue
            carved[(subset, value)] = np.ascontiguousarray(bits[mask])
        return carved

    def _snapshot(self, request: ShardSnapshotRequest) -> dict:
        """Prepare phase: write handoff store file(s) + warm sidecar.

        Pure read — the worker keeps serving its full range from memory
        afterwards, which is what keeps mid-rebalance answers exact
        while the coordinator still routes by the committed map.
        """
        prf = self.estimator.prf
        columns = self.engine.store.to_columns()
        universe = user_universe(columns)
        if request.op == "export":
            _durable_save_store(self.engine.store, request.right_path, prf)
            warm = self._warm_entries(columns, keep=None)
            warm_count = (
                _save_warm_sidecar(request.warm_path, warm)
                if request.warm_path
                else 0
            )
            return {
                "num_users": len(universe),
                "first_user": universe[0] if universe else "",
                "last_user": universe[-1] if universe else "",
                "warm_entries": warm_count,
            }
        # carve
        if len(universe) < 2:
            raise ValueError(
                f"cannot split a shard holding {len(universe)} user(s); "
                "a split must leave both halves non-empty"
            )
        boundary = request.boundary or universe[len(universe) // 2]
        if not universe[0] < boundary <= universe[-1]:
            raise ValueError(
                f"split boundary {boundary!r} must lie in ({universe[0]!r}, "
                f"{universe[-1]!r}] so both halves keep at least one user"
            )
        left_columns, right_columns = split_columns_at(columns, boundary)
        left_store = SketchStore.from_columns(left_columns)
        right_store = SketchStore.from_columns(right_columns)
        _durable_save_store(left_store, request.left_path, prf)
        _durable_save_store(right_store, request.right_path, prf)
        keep_left = self._range_masks(columns, boundary)
        moving = {subset: ~mask for subset, mask in keep_left.items()}
        warm = self._warm_entries(right_columns, keep=moving)
        warm_count = (
            _save_warm_sidecar(request.warm_path, warm) if request.warm_path else 0
        )
        left_universe = user_universe(left_columns)
        right_universe = user_universe(right_columns)
        # Stage the donor's own shed while everything is already in
        # hand: the later ``shard_drop prepare`` becomes a no-op lookup
        # instead of a second full column rebuild on the serving path.
        keep_carry = self._warm_entries(left_columns, keep=keep_left)
        self._staged = (
            "drop",
            boundary,
            left_store,
            keep_carry,
            {
                "num_users": len(left_universe),
                "first_user": left_universe[0],
                "last_user": left_universe[-1],
                "carried_entries": len(keep_carry),
            },
        )
        return {
            "boundary": boundary,
            "left": {
                "num_users": len(left_universe),
                "first_user": left_universe[0],
                "last_user": left_universe[-1],
            },
            "right": {
                "num_users": len(right_universe),
                "first_user": right_universe[0],
                "last_user": right_universe[-1],
            },
            "warm_entries": warm_count,
        }

    def _install_store(self, store, carry: Dict[tuple, np.ndarray]) -> None:
        """Swap the wrapped engine onto ``store``, carrying warm entries.

        A fresh :class:`QueryEngine` (and therefore a fresh
        content-addressed cache generation) is built rather than mutated
        in place: the old cache directory describes the old column
        sizes, and its strict oversized-entry check would — correctly —
        refuse to serve them against a shrunken store.  Carried entries
        are installed *and re-spilled to disk*, so a later watchdog
        restart of this worker rejoins warm.
        """
        engine = QueryEngine(
            None,
            store,
            self.estimator,
            cache_dir=self._cache_dir,
            cache_budget_bytes=self._cache_budget_bytes,
        )
        for (subset, value), bits in carry.items():
            if not store.has_subset(subset):
                continue
            if bits.size != store.num_users(subset):
                continue
            engine.cache.seed_entry(subset, value, bits)
        self.engine = engine
        self.cache = engine.cache

    def _commit_staged(self, op: str, token: str) -> dict:
        """Swap a staged engine in — the only work under the barrier."""
        if self._staged is None or self._staged[:2] != (op, token):
            have = None if self._staged is None else self._staged[:2]
            raise ValueError(
                f"no staged {op!r} state for {token!r} to commit "
                f"(staged: {have}); the prepare stage must run first "
                "on this same worker process"
            )
        _op, _token, store, carry, stats = self._staged
        self._staged = None
        self._install_store(store, carry)
        return stats

    def _adopt(self, request: ShardAdoptRequest) -> dict:
        """Merge: absorb the handoff range after our own.

        Merged column order is *own pieces then handoff pieces* — both
        in their original publication order — so a carried own-entry
        concatenated with the sidecar's entry is positionally exact.
        The heavy lifting (load, merge, persist, cache splice) happens
        in the ``prepare`` stage while this worker keeps serving its
        own range; ``commit`` is a pointer swap.
        """
        if request.stage == "commit":
            return self._commit_staged("adopt", request.save_path)
        prf = self.estimator.prf
        handoff_store, _header = load_store(request.handoff_path, expected_prf=prf)
        handoff_columns = handoff_store.to_columns()
        own_columns = self.engine.store.to_columns()
        merged = merge_columns([own_columns, handoff_columns])
        merged_store = SketchStore.from_columns(merged)
        _durable_save_store(merged_store, request.save_path, prf)
        sidecar = (
            _load_warm_sidecar(request.warm_path) if request.warm_path else {}
        )
        carry: Dict[tuple, np.ndarray] = {}
        own_entries = self.cache.entries_snapshot()
        for (subset, value), bits in own_entries.items():
            handoff_column = handoff_columns.get(subset)
            if handoff_column is None:
                carry[(subset, value)] = bits
                continue
            extra = sidecar.get((subset, value))
            if extra is not None and extra.size == len(handoff_column.user_ids):
                carry[(subset, value)] = np.concatenate(
                    [np.asarray(bits, dtype=np.int8), extra]
                )
            # else: recomputed lazily on first use — still exact.
        for (subset, value), extra in sidecar.items():
            # Subsets we never published: the merged column IS the
            # handoff column, so the sidecar entry carries whole.
            if subset not in own_columns and (subset, value) not in carry:
                carry[(subset, value)] = extra
        universe = user_universe(merged)
        stats = {
            "num_users": len(universe),
            "first_user": universe[0] if universe else "",
            "last_user": universe[-1] if universe else "",
            "carried_entries": len(carry),
        }
        if request.stage == "prepare":
            self._staged = ("adopt", request.save_path, merged_store, carry, stats)
            return stats
        self._install_store(merged_store, carry)
        return stats

    def _drop(self, request: ShardDropRequest) -> dict:
        """Split: shed every user ``>= boundary``.

        ``prepare`` builds the shrunken engine while the worker still
        answers for its full range; ``commit`` swaps it in under the
        coordinator's barrier.
        """
        if request.stage == "commit":
            return self._commit_staged("drop", request.boundary)
        if (
            request.stage == "prepare"
            and self._staged is not None
            and self._staged[:2] == ("drop", request.boundary)
        ):
            # The carve snapshot already staged this shed.
            return self._staged[4]
        columns = self.engine.store.to_columns()
        left_columns, right_columns = split_columns_at(columns, request.boundary)
        if not right_columns:
            raise ValueError(
                f"drop boundary {request.boundary!r} sheds no user from this shard"
            )
        if not left_columns:
            raise ValueError(
                f"drop boundary {request.boundary!r} would shed every user; "
                "a donor must keep a non-empty range"
            )
        keep = self._range_masks(columns, request.boundary)
        carry: Dict[tuple, np.ndarray] = {}
        for (subset, value), bits in self.cache.entries_snapshot().items():
            mask = keep.get(subset)
            if mask is None or not mask.any():
                continue
            carry[(subset, value)] = np.ascontiguousarray(bits[mask])
        left_store = SketchStore.from_columns(left_columns)
        universe = user_universe(left_columns)
        stats = {
            "num_users": len(universe),
            "first_user": universe[0],
            "last_user": universe[-1],
            "carried_entries": len(carry),
        }
        if request.stage == "prepare":
            self._staged = ("drop", request.boundary, left_store, carry, stats)
            return stats
        self._install_store(left_store, carry)
        return stats

    def _partial(self, request: ShardPartialRequest) -> dict:
        if request.op == "bit_sums":
            return self._bit_sums(request)
        if request.op == "weight_counts":
            return self._weight_counts(request)
        return self._matrix_rows(request)

    def _bit_sums(self, request: ShardPartialRequest) -> dict:
        subset = request.subsets[0]
        values = [group[0] for group in request.groups]
        if not self.engine.store.has_subset(subset):
            return {"num_users": 0, "sums": [0] * len(values)}
        columns = self.engine.cache.bits(subset, values)
        return {
            "num_users": int(self.engine.store.num_users(subset)),
            "sums": [int(np.asarray(column).sum()) for column in columns],
        }

    def _aligned_gathers(
        self,
        subsets: Tuple[Subset, ...],
        groups: Tuple[Tuple[Tuple[int, ...], ...], ...],
    ) -> Tuple[Optional[List[List[np.ndarray]]], int]:
        """Cached full columns gathered onto this shard's aligned users.

        Returns ``(gathered, num_users)`` with ``gathered[i][j]`` the
        ``i``-th subset's aligned column for group ``j``, or
        ``(None, 0)`` when this shard has no user spanning all subsets.
        """
        store = self.engine.store
        if any(not store.has_subset(subset) for subset in subsets):
            return None, 0
        try:
            aligned = self.engine._aligned_columns(tuple(subsets))
        except ValueError:
            return None, 0
        gathered: List[List[np.ndarray]] = []
        for i, (subset, index) in enumerate(zip(subsets, aligned.indices)):
            fulls = self.engine.cache.bits(subset, [group[i] for group in groups])
            gathered.append([np.asarray(full)[index] for full in fulls])
        return gathered, len(aligned.user_ids)

    def _weight_counts(self, request: ShardPartialRequest) -> dict:
        k = len(request.subsets)
        gathered, num_users = self._aligned_gathers(request.subsets, request.groups)
        if gathered is None:
            return {
                "num_users": 0,
                "counts": [[0] * (k + 1) for _ in request.groups],
            }
        counts = []
        for j in range(len(request.groups)):
            # Mirrors combine.weight_histogram's integer half exactly:
            # row sums of the (users x k) int8 matrix, then bincount.
            matrix = np.column_stack([gathered[i][j] for i in range(k)])
            weights = matrix.sum(axis=1).astype(np.int64)
            counts.append(np.bincount(weights, minlength=k + 1).tolist())
        return {"num_users": num_users, "counts": counts}

    def _matrix_rows(self, request: ShardPartialRequest) -> dict:
        gathered, num_users = self._aligned_gathers(request.subsets, request.groups)
        if gathered is None:
            return {"num_users": 0, "rows": []}
        matrix = np.column_stack(
            [gathered[i][0] for i in range(len(request.subsets))]
        )
        return {"num_users": num_users, "rows": matrix.tolist()}


def run_shard_worker(config: dict) -> None:
    """Process entry point for one shard worker (spawn-safe primitives only).

    ``config`` keys: ``store_path``, ``prf_spec`` (from ``prf.spec()``),
    ``ready_path``, ``token``, and optionally ``host``, ``cache_dir``,
    ``cache_budget_bytes``, ``warm_path`` (a rebalance warm sidecar to
    seed the cache from before serving — a recipient shard starts warm
    instead of re-evaluating the PRF for columns its donor already had).
    Loads the shard store, serves a :class:`ShardWorkerEngine` on an
    ephemeral loopback port, and reports the bound address by atomically
    (and durably) writing ``"host port"`` to ``ready_path``.  Blocks
    until the process is terminated.
    """
    prf = prf_from_spec(config["prf_spec"])
    store, _header = load_store(config["store_path"], expected_prf=prf)
    estimator = SketchEstimator(PrivacyParams(p=prf.p), prf)
    engine = QueryEngine(
        None,
        store,
        estimator,
        cache_dir=config.get("cache_dir"),
        cache_budget_bytes=config.get("cache_budget_bytes"),
    )
    warm_path = config.get("warm_path")
    if warm_path and os.path.exists(warm_path):
        for (subset, value), bits in _load_warm_sidecar(warm_path).items():
            if store.has_subset(subset) and bits.size == store.num_users(subset):
                engine.cache.seed_entry(subset, value, bits)
    worker = ShardWorkerEngine(
        engine,
        cache_dir=config.get("cache_dir"),
        cache_budget_bytes=config.get("cache_budget_bytes"),
    )
    server = RemoteServer(worker, {SHARD_ANALYST: config["token"]})
    ready_path = config["ready_path"]

    def _ready(address: Tuple[str, int]) -> None:
        host, port = address
        _durable_replace_bytes(ready_path, f"{host} {port}\n".encode("utf-8"))

    server.run(config.get("host", "127.0.0.1"), 0, ready_callback=_ready)


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class _ShardHandle:
    """The coordinator's connection to one live shard worker.

    Each handle owns its shard's :class:`CircuitBreaker`: the breaker's
    lifetime is the *membership* lifetime, so a shard that re-joins
    (:meth:`ShardCoordinator.join` after a restart) starts with a closed
    circuit regardless of how it left.
    """

    def __init__(
        self,
        shard_id: str,
        host: str,
        port: int,
        token: str,
        timeout: float,
        breaker: CircuitBreaker,
    ) -> None:
        self.shard_id = shard_id
        self.host = host
        self.port = int(port)
        self._token = token
        self._timeout = timeout
        self.breaker = breaker
        # One wire per shard: requests to the same shard serialize here
        # (protocol framing demands it — replies are matched to requests
        # by order); distinct shards proceed in parallel on the shared
        # scatter pool, and the worker's own dispatch pool overlaps work
        # across coordinator connections.
        self.lock = threading.Lock()
        self.client: Optional[RemoteQueryEngine] = RemoteQueryEngine(
            host, port, token, timeout=timeout
        )

    def reconnect(self) -> None:
        # Drop the old client *before* dialing: if the dial fails, the
        # handle is left with no client (not a closed one), so the next
        # request goes straight back through the retry path instead of
        # tripping over a closed socket file.
        old, self.client = self.client, None
        if old is not None:
            with contextlib.suppress(Exception):
                old.close()
        self.client = RemoteQueryEngine(
            self.host, self.port, self._token, timeout=self._timeout
        )

    def close(self) -> None:
        if self.client is not None:
            with contextlib.suppress(Exception):
                self.client.close()


class ShardCoordinator:
    """Scatter-gather front-end speaking the typed query protocol unchanged.

    Drop-in for a single-store :class:`QueryEngine` wherever only the
    ``execute``/``estimator`` surface is used — in particular behind
    :class:`~repro.server.remote.RemoteServer` — and byte-compatible
    with it: every handler reproduces the single-store result *and* the
    single-store error messages and precedence, because global checks
    (catalog membership, widths, partitions) run against the original
    store's subset catalog **before** any fan-out, and the float
    arithmetic runs exactly once on exactly-merged integer partials.

    Membership is dynamic: shards :meth:`join` with a live address and
    :meth:`leave` with request draining (in-flight fan-outs finish
    first).  A scatter hitting a dead connection retries once on a
    fresh connection — a worker restarted in place answers, a dead one
    fails fast into :class:`ShardUnavailableError`.  The shard map is
    checkpointed atomically on construction when ``checkpoint_path`` is
    given.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        estimator: SketchEstimator,
        *,
        checkpoint_path: str | os.PathLike | None = None,
        timeout: float = 30.0,
        pool_size: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 1.0,
        breaker_clock=time.monotonic,
    ) -> None:
        self.shard_map = shard_map
        self.estimator = estimator
        self.timeout = float(timeout)
        # Default policy = the historical behaviour exactly: one
        # immediate reconnect-and-retry, no backoff.
        self.retry = retry if retry is not None else RetryPolicy(max_retries=1)
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_reset = float(breaker_reset)
        self._breaker_clock = breaker_clock
        self._subsets: Tuple[Subset, ...] = tuple(
            tuple(int(i) for i in subset) for subset in shard_map.subsets
        )
        self._catalog: Set[Subset] = set(self._subsets)
        self._order: List[str] = [spec.shard_id for spec in shard_map.shards]
        self._handles: Dict[str, _ShardHandle] = {}
        self._active: Dict[str, int] = {}
        self._draining: Set[str] = set()
        self._cond = threading.Condition()
        # Shared scatter pool: one bounded executor serves every
        # fan-out, replacing a fresh thread per shard per request.  Two
        # slots per shard lets a second fan-out (dispatched by the
        # front-end RemoteServer's pool) overlap the first; beyond that
        # tasks queue — each task is a leaf (one wire call, no nested
        # submits), so queueing cannot deadlock.
        if pool_size is None:
            pool_size = min(32, 2 * max(1, len(self._order)))
        elif pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self._pool_size = int(pool_size)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._partition_cache: Dict[Subset, Optional[List[Subset]]] = {}
        # Commit barrier for live rebalancing: while set, new fan-outs
        # wait (bounded by the coordinator timeout) instead of racing a
        # topology flip.  The supervisor that drives rebalances attaches
        # itself here; a bare coordinator refuses the admin kinds.
        self._rebalancing = False
        self.rebalance_executor = None
        self.checkpoint_path = (
            None if checkpoint_path is None else os.fspath(checkpoint_path)
        )
        if self.checkpoint_path is not None:
            shard_map.save(self.checkpoint_path)

    # -- membership ----------------------------------------------------
    def join(self, shard_id: str, host: str, port: int, token: str) -> None:
        """Admit (or re-admit) a shard worker at a live address."""
        if shard_id not in self._order:
            raise ValueError(
                f"unknown shard id {shard_id!r}; the shard map lists {self._order}"
            )
        handle = _ShardHandle(
            shard_id,
            host,
            port,
            token,
            self.timeout,
            CircuitBreaker(
                failure_threshold=self._breaker_threshold,
                reset_timeout=self._breaker_reset,
                clock=self._breaker_clock,
            ),
        )
        with self._cond:
            old = self._handles.pop(shard_id, None)
            self._handles[shard_id] = handle
            self._draining.discard(shard_id)
            self._cond.notify_all()
        if old is not None:
            old.close()

    def leave(self, shard_id: str, drain: bool = True) -> None:
        """Remove a shard from membership.

        With ``drain`` (default), marks the shard draining — new
        fan-outs refuse immediately — and waits for in-flight requests
        against it to finish before closing the connection.
        """
        with self._cond:
            handle = self._handles.get(shard_id)
            if handle is None:
                return
            self._draining.add(shard_id)
            if drain:
                while self._active.get(shard_id, 0) > 0:
                    self._cond.wait(timeout=1.0)
            self._handles.pop(shard_id, None)
            self._draining.discard(shard_id)
        handle.close()

    def live_shards(self) -> List[str]:
        """Shard ids currently joined (and not draining), in range order."""
        with self._cond:
            return [
                shard_id
                for shard_id in self._order
                if shard_id in self._handles and shard_id not in self._draining
            ]

    def breaker_states(self) -> Dict[str, dict]:
        """Per-shard circuit-breaker snapshots (the ``status`` ops surface).

        Shards that have left the membership report ``"absent"``.
        """
        with self._cond:
            handles = dict(self._handles)
        return {
            shard_id: (
                handles[shard_id].breaker.snapshot()
                if shard_id in handles
                else {"state": "absent"}
            )
            for shard_id in self._order
        }

    def close(self) -> None:
        with self._cond:
            handles = list(self._handles.values())
            self._handles.clear()
            pool, self._pool = self._pool, None
        for handle in handles:
            handle.close()
        if pool is not None:
            pool.shutdown(wait=False)

    # -- the rebalance commit barrier ----------------------------------
    @contextlib.contextmanager
    def rebalance_barrier(self, timeout: Optional[float] = None):
        """Exclusive window for a topology flip: drain, pause, yield.

        New fan-outs block in :meth:`_snapshot` (they retry after the
        barrier lifts — brief extra latency, never an error), and every
        in-flight fan-out finishes before the body runs.  This ordering
        is what keeps rebalancing exact: a fan-out started before the
        barrier sees the *old* topology with the donor still serving its
        full range; one started after sees the flipped map; none ever
        sees a half-applied mutation where a moved range is covered
        twice or not at all.
        """
        limit = self.timeout if timeout is None else float(timeout)
        deadline = time.monotonic() + limit
        with self._cond:
            while self._rebalancing:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardUnavailableError(
                        "another rebalance holds the commit barrier; retry"
                    )
                self._cond.wait(timeout=remaining)
            self._rebalancing = True
            try:
                while any(self._active.get(s, 0) > 0 for s in self._order):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ShardUnavailableError(
                            "in-flight queries did not drain within "
                            f"{limit}s; rebalance commit abandoned"
                        )
                    self._cond.wait(timeout=remaining)
            except BaseException:
                self._rebalancing = False
                self._cond.notify_all()
                raise
        try:
            yield
        finally:
            with self._cond:
                self._rebalancing = False
                self._cond.notify_all()

    def apply_rebalance(
        self,
        new_map: ShardMap,
        joins: Dict[str, Tuple[str, int, str]],
        removals: Sequence[str],
    ) -> None:
        """Flip the routing topology to ``new_map`` (barrier held by caller).

        ``joins`` maps new shard ids to ``(host, port, token)`` live
        addresses; ``removals`` lists shard ids leaving the order.  The
        subset catalog never changes — rebalancing moves users, not
        subsets — so partition memos stay valid.
        """
        closing: List[_ShardHandle] = []
        with self._cond:
            self.shard_map = new_map
            self._order = [spec.shard_id for spec in new_map.shards]
            for shard_id in removals:
                handle = self._handles.pop(shard_id, None)
                if handle is not None:
                    closing.append(handle)
                self._draining.discard(shard_id)
            for shard_id, (host, port, token) in joins.items():
                old = self._handles.pop(shard_id, None)
                if old is not None:
                    closing.append(old)
                self._handles[shard_id] = _ShardHandle(
                    shard_id,
                    host,
                    port,
                    token,
                    self.timeout,
                    CircuitBreaker(
                        failure_threshold=self._breaker_threshold,
                        reset_timeout=self._breaker_reset,
                        clock=self._breaker_clock,
                    ),
                )
            self._cond.notify_all()
        for handle in closing:
            handle.close()

    # -- scatter-gather ------------------------------------------------
    def _snapshot(self) -> List[_ShardHandle]:
        """Pin every shard for one fan-out, or refuse if any is absent."""
        with self._cond:
            deadline = time.monotonic() + self.timeout
            while self._rebalancing:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardUnavailableError(
                        "a rebalance commit is holding the topology barrier; "
                        "retry the query"
                    )
                self._cond.wait(timeout=remaining)
            missing = [
                shard_id
                for shard_id in self._order
                if shard_id not in self._handles or shard_id in self._draining
            ]
            if missing:
                raise ShardUnavailableError(
                    f"shard {missing[0]!r} has left the cluster (or is draining); "
                    "exact answers need every shard — rejoin it and retry"
                )
            handles = [self._handles[shard_id] for shard_id in self._order]
            for shard_id in self._order:
                self._active[shard_id] = self._active.get(shard_id, 0) + 1
        return handles

    def _release(self, shard_id: str) -> None:
        with self._cond:
            self._active[shard_id] -= 1
            self._cond.notify_all()

    def _scatter_pool(self) -> ThreadPoolExecutor:
        """The shared fan-out executor, created on first multi-shard use."""
        with self._cond:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._pool_size, thread_name_prefix="repro-scatter"
                )
            return self._pool

    def _scatter(self, request: ShardPartialRequest) -> List[dict]:
        """One partial request to every shard; partials in range order.

        Fan-out rides the shared bounded pool (not a fresh thread per
        shard per request): per-request thread creation cost disappears
        from the scatter path, and total coordinator threads stay capped
        however many front-end requests are in flight.  Requests to the
        *same* shard still serialize on that shard's wire lock.

        The ambient request deadline (set by the front-end perimeter via
        the resilience contextvar) is captured *here*, on the dispatch
        thread, and handed to each shard call explicitly — pool threads
        do not inherit the context — so every hop's socket timeout
        shrinks to the remaining budget.
        """
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("fan-out")
        handles = self._snapshot()
        results: List[Optional[QueryResponse]] = [None] * len(handles)
        errors: List[Optional[BaseException]] = [None] * len(handles)

        def call(index: int, handle: _ShardHandle) -> None:
            try:
                results[index] = self._call_shard(handle, request, deadline)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors[index] = exc
            finally:
                self._release(handle.shard_id)

        if len(handles) == 1:
            call(0, handles[0])
        else:
            pool = self._scatter_pool()
            futures = [
                pool.submit(call, i, handle) for i, handle in enumerate(handles)
            ]
            for future in futures:
                future.result()  # call() never raises; this is the join
        for exc in errors:
            if exc is not None:
                raise exc
        return [response.result for response in results]

    def _call_shard(
        self,
        handle: _ShardHandle,
        request: ShardPartialRequest,
        deadline: Optional[Deadline] = None,
    ) -> QueryResponse:
        """Execute on one shard through its breaker and the retry policy.

        The shard's circuit breaker gates the call: an open circuit
        refuses immediately (no connection attempt, no backoff burn) and
        only the half-open probe reaches the wire until the shard proves
        healthy again.  A closed circuit admits the call, which then
        walks the retry policy's deterministic backoff schedule — each
        attempt on a fresh connection, each failure recorded against the
        breaker.  A worker restarted in place answers a retry; a dead
        one fails fast into :class:`ShardUnavailableError` — no hanging
        on a half-open socket.  A live ``deadline`` bounds every
        attempt's socket timeout and stops the backoff walk the moment
        the budget runs out.
        """
        breaker = handle.breaker
        if not breaker.allow():
            raise ShardUnavailableError(
                f"shard {handle.shard_id!r} at {handle.host}:{handle.port} has "
                "an open circuit after repeated failures; the next probe is "
                f"admitted {breaker.reset_timeout}s after it opened"
            )
        schedule = self.retry.schedule(handle.shard_id)
        first: Optional[BaseException] = None
        probe_pending = True
        try:
            with handle.lock:
                for attempt, backoff in enumerate((0.0,) + tuple(schedule)):
                    if backoff:
                        time.sleep(
                            backoff
                            if deadline is None
                            else min(backoff, deadline.remaining())
                        )
                    if deadline is not None and deadline.expired:
                        # Out of budget is the *request's* problem, not
                        # the shard's: no breaker failure is recorded.
                        raise DeadlineExceeded(
                            f"request deadline exceeded after {attempt} "
                            f"attempt(s) against shard {handle.shard_id!r}"
                        ) from first
                    try:
                        if attempt > 0 or handle.client is None:
                            handle.reconnect()
                        response = handle.client.execute(
                            request, deadline=deadline
                        )
                    except (OSError, EOFError) as exc:
                        if first is None:
                            first = exc
                        breaker.record_failure()
                        continue
                    breaker.record_success()
                    probe_pending = False
                    return response
        finally:
            # A half-open probe that exited abnormally (deadline hit
            # between attempts) must not leave the probe latch stuck.
            if probe_pending and first is None and breaker.state == "half_open":
                breaker.record_failure()
        retries = len(schedule)
        raise ShardUnavailableError(
            f"shard {handle.shard_id!r} at {handle.host}:{handle.port} is "
            f"unreachable after {'one retry' if retries == 1 else f'{retries} retries'} "
            f"({first}); rejoin it and retry the query"
        ) from first

    # -- the unified dispatch surface ----------------------------------
    def execute(self, request: QueryRequest) -> QueryResponse:
        """Answer one typed protocol request by exact scatter-gather."""
        handler = self._HANDLERS.get(request.kind)
        if handler is None:
            raise ProtocolError(
                "unknown_kind",
                f"unknown request kind {request.kind!r}; this engine answers "
                f"{sorted(self._HANDLERS)}",
            )
        return QueryResponse(kind=request.kind, result=handler(self, request))

    # -- reduction helpers ---------------------------------------------
    def _missing(self, key: Subset) -> MissingSketchError:
        return MissingSketchError(
            f"subset {key} was not sketched; available subsets: "
            f"{sorted(self._subsets)}"
        )

    def _estimates(
        self, key: Subset, values: Sequence[Tuple[int, ...]], delta: float = 0.05
    ) -> List[QueryEstimate]:
        """Global Algorithm 2 estimates from merged per-shard bit sums."""
        if key not in self._catalog:
            raise self._missing(key)
        partials = self._scatter(
            ShardPartialRequest.build("bit_sums", [key], [(value,) for value in values])
        )
        sums, num_users = merge_bit_sum_partials(partials, len(values))
        return [
            self.estimator.estimate_from_counts(bit_sum, num_users, delta=delta)
            for bit_sum in sums
        ]

    def _weight_counts(
        self,
        subsets: Sequence[Subset],
        groups: Sequence[Tuple[Tuple[int, ...], ...]],
    ) -> Tuple[np.ndarray, int]:
        """Merged integer weight histograms over the aligned users of
        ``subsets``; raises the single-store no-common-user ``ValueError``."""
        keys = [tuple(s) for s in subsets]
        partials = self._scatter(
            ShardPartialRequest.build("weight_counts", keys, groups)
        )
        counts, num_users = merge_weight_count_partials(
            partials, len(groups), len(keys)
        )
        if num_users == 0:
            raise ValueError(f"no user published sketches for all of {keys}")
        return counts, num_users

    def _require_partition(self, target: Subset) -> List[Subset]:
        # Unlocked memo: the catalog is frozen at construction, so the
        # check-then-set race between concurrent front-end dispatches
        # only recomputes the same deterministic partition.
        if target not in self._partition_cache:
            self._partition_cache[target] = search_exact_cover(target, self._subsets)
        partition = self._partition_cache[target]
        if partition is None:
            raise MissingSketchError(
                f"subset {target} is neither sketched nor a disjoint union of "
                f"sketched subsets; available: {sorted(self._subsets)}"
            )
        return partition

    # -- request handlers ----------------------------------------------
    def _exec_estimate_many(
        self, request: EstimateManyRequest
    ) -> List[QueryEstimate]:
        return self._estimates(request.subset, list(request.values))

    def _exec_marginal(self, request: MarginalRequest) -> np.ndarray:
        key = request.subset
        width = len(key)
        if width > 12:
            raise ValueError(
                f"a marginal over 2**{width} values is not sensible; "
                "query specific values instead"
            )
        candidates = [int_to_bits(v, width) for v in range(1 << width)]
        estimates = self._estimates(key, candidates)
        return np.asarray([e.fraction for e in estimates])

    def _exec_fraction(self, request: FractionRequest) -> float:
        key, value = request.subset, request.value
        if key in self._catalog:
            return self._estimates(key, [value])[0].fraction
        partition = self._require_partition(key)
        values = QueryEngine._project_value(key, value, partition)
        counts, num_users = self._weight_counts(partition, [tuple(values)])
        combined = combine_from_weight_counts(
            counts[0], num_users, self.estimator.params.p
        )
        return combined.clamped_fraction

    def _exec_counts_block(self, request: CountsBlockRequest) -> List[float]:
        key = request.subset
        value_ts = list(request.values)
        if key in self._catalog:
            return [estimate.count for estimate in self._estimates(key, value_ts)]
        if not value_ts:
            return []
        partition = self._require_partition(key)
        # projections[j] = value j projected onto the partition pieces;
        # the pieces travel in the partial request itself, so workers
        # never re-derive the partition (and cannot disagree about it
        # when their local subset inventories differ).
        projections = [
            tuple(QueryEngine._project_value(key, value_t, partition))
            for value_t in value_ts
        ]
        counts, num_users = self._weight_counts(partition, projections)
        p = self.estimator.params.p
        return [
            combine_from_weight_counts(counts[j], num_users, p).clamped_fraction
            * num_users
            for j in range(len(value_ts))
        ]

    def _exec_any_of(self, request: AnyOfRequest) -> float:
        if not request.queries:
            raise ValueError("need at least one conjunction")
        subsets = [subset for subset, _value in request.queries]
        for subset in subsets:
            if subset not in self._catalog:
                raise MissingSketchError(
                    f"subset {subset} was not sketched; disjunctions need "
                    "each component's subset published directly"
                )
        group = tuple(value for _subset, value in request.queries)
        counts, num_users = self._weight_counts(subsets, [group])
        combined = combine_from_weight_counts(
            counts[0], num_users, self.estimator.params.p
        )
        # Matches disjunction_fraction_from_bits(..., clamp=True).
        fraction = 1.0 - combined.none_fraction
        return min(1.0, max(0.0, fraction))

    def _check_positions(self, positions: Sequence[int]) -> List[Subset]:
        subsets = [(int(pos),) for pos in positions]
        for subset in subsets:
            if subset not in self._catalog:
                raise MissingSketchError(
                    f"bit {subset[0]} was not sketched individually; "
                    "use a per-bit publishing policy"
                )
        return subsets

    def _exec_bit_matrix(self, request: BitMatrixRequest) -> np.ndarray:
        subsets = self._check_positions(request.positions)
        target_t = (int(request.target),)
        keys = [tuple(s) for s in subsets]
        partials = self._scatter(
            ShardPartialRequest.build(
                "matrix_rows", keys, [tuple(target_t for _ in keys)]
            )
        )
        matrix = merge_matrix_partials(partials, len(keys))
        if matrix is None:
            raise ValueError(f"no user published sketches for all of {keys}")
        return matrix

    def _exec_exactly_l(self, request: ExactlyLRequest) -> float:
        subsets = self._check_positions(request.positions)
        k = len(subsets)
        counts, num_users = self._weight_counts(
            subsets, [tuple((1,) for _ in subsets)]
        )
        # Gathering precedes the l-range check, matching the single-store
        # engine (which builds the bit matrix first).
        if not 0 <= request.l <= k:
            raise ValueError(f"l must be in [0, {k}], got {request.l}")
        combined = combine_from_weight_counts(
            counts[0], num_users, self.estimator.params.p
        )
        return float(combined.weight_distribution[request.l])

    def _exec_evaluate_plan(self, request: EvaluatePlanRequest) -> float:
        return evaluate_plan(
            request.to_plan(), self.count, block_count_fn=self.counts_block
        )

    # -- admin kinds (live rebalancing) --------------------------------
    def _require_executor(self):
        executor = self.rebalance_executor
        if executor is None:
            raise ValueError(
                "no shard supervisor is attached to this coordinator; live "
                "rebalancing is only available when serving via ShardedService"
            )
        return executor

    def _exec_rebalance_split(self, request: RebalanceSplitRequest) -> dict:
        return self._require_executor().rebalance_split(
            request.shard_id, boundary=request.boundary
        )

    def _exec_rebalance_merge(self, request: RebalanceMergeRequest) -> dict:
        return self._require_executor().rebalance_merge(request.left, request.right)

    def _exec_rebalance_status(self, request: RebalanceStatusRequest) -> dict:
        return self._require_executor().rebalance_status()

    def events_summary(self) -> Optional[dict]:
        """Supervisor event-log counters for the ``status`` ops surface
        (``None`` for a bare coordinator with no supervisor attached)."""
        executor = self.rebalance_executor
        if executor is None:
            return None
        return executor.events_summary()

    #: kind -> handler; mirrors QueryEngine._HANDLERS key for key, so
    #: unknown-kind errors render identically too.
    _HANDLERS = {
        CountsBlockRequest.kind: _exec_counts_block,
        EstimateManyRequest.kind: _exec_estimate_many,
        MarginalRequest.kind: _exec_marginal,
        FractionRequest.kind: _exec_fraction,
        AnyOfRequest.kind: _exec_any_of,
        ExactlyLRequest.kind: _exec_exactly_l,
        BitMatrixRequest.kind: _exec_bit_matrix,
        EvaluatePlanRequest.kind: _exec_evaluate_plan,
        RebalanceSplitRequest.kind: _exec_rebalance_split,
        RebalanceMergeRequest.kind: _exec_rebalance_merge,
        RebalanceStatusRequest.kind: _exec_rebalance_status,
    }

    # -- thin public wrappers (same convenience surface as QueryEngine) -
    def estimate(
        self, subset: Sequence[int], value: Sequence[int]
    ) -> QueryEstimate:
        return self.estimate_many(subset, [value])[0]

    def estimate_many(
        self, subset: Sequence[int], values: Sequence[Sequence[int]]
    ) -> List[QueryEstimate]:
        return list(self.execute(EstimateManyRequest.build(subset, values)).result)

    def marginal(self, subset: Sequence[int]) -> np.ndarray:
        return np.asarray(self.execute(MarginalRequest.build(subset)).result)

    def fraction(self, subset: Sequence[int], value: Sequence[int]) -> float:
        return self.execute(FractionRequest.build(subset, value)).result

    def count(self, subset: Sequence[int], value: Sequence[int]) -> float:
        return self.counts_block(subset, [value])[0]

    def counts_block(
        self, subset: Sequence[int], values: Sequence[Tuple[int, ...]]
    ) -> List[float]:
        return list(self.execute(CountsBlockRequest.build(subset, values)).result)

    def conjunction(self, query: Conjunction) -> float:
        return self.fraction(query.subset, query.value)

    def any_of(self, queries: Sequence[Conjunction]) -> float:
        if not queries:
            raise ValueError("need at least one conjunction")
        return self.execute(
            AnyOfRequest.build([(q.subset, q.value) for q in queries])
        ).result

    def bit_matrix(self, positions: Sequence[int], target: int = 1) -> np.ndarray:
        return self.execute(BitMatrixRequest.build(positions, target)).result

    def exactly_l(self, positions: Sequence[int], l: int) -> float:
        return self.execute(ExactlyLRequest.build(positions, l)).result

    def evaluate(self, plan: LinearPlan) -> float:
        return self.execute(EvaluatePlanRequest.from_plan(plan)).result


# ----------------------------------------------------------------------
# The process supervisor
# ----------------------------------------------------------------------
def _preferred_context() -> multiprocessing.context.BaseContext:
    """fork where available (same choice as publish_database: cheap,
    no re-import per worker), spawn elsewhere — worker payloads are
    spawn-safe primitives either way."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ShardedService:
    """Supervisor: shard stores on disk, one worker process each, a
    coordinator in front.

    The deployment harness the CLI, tests, and benchmarks share.
    Directory layout under ``base_dir``::

        shard-<i>.npz      per-shard columnar v2 store
        shard_map.json     atomic shard-map checkpoint (crash recovery)
        ready/<shard_id>   worker address handshake files
        cache/<shard_id>/  per-worker persistent cache root (opt-in)

    Build with :meth:`from_store` (splits and lays the directory out) or
    :meth:`from_checkpoint` (crash recovery: reattaches to the shard
    stores a previous supervisor left behind — with per-worker caching
    restored from the checkpointed cache state, so recovered workers
    rejoin *warm*), then :meth:`start` to spawn workers and join them
    into the coordinator.  Context-manager friendly;
    :func:`sharded_service` wraps the whole lifecycle.

    With ``watchdog_interval`` set, a daemon **watchdog** thread probes
    every worker each interval — process liveness plus a ``ping``
    request over a short-lived connection (a worker that accepts but
    never answers within ``watchdog_probe_timeout`` seconds counts as
    *hung*) — and auto-restarts failed workers from their checkpointed
    stores, up to ``watchdog_max_restarts`` times per shard.  Every
    probe failure, restart, and give-up is appended to :attr:`events`
    (a structured, in-order log); restarted workers reuse their
    persistent cache directory, so they rejoin warm with zero operator
    action.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        prf,
        base_dir: str | os.PathLike,
        *,
        cache: bool = False,
        cache_budget_bytes: int | None = None,
        timeout: float = 30.0,
        token: str = "shard-internal",
        pool_size: int | None = None,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 1.0,
        watchdog_interval: float | None = None,
        watchdog_max_restarts: int = 3,
        watchdog_probe_timeout: float = 2.0,
        events_limit: int = 1000,
    ) -> None:
        self.shard_map = shard_map
        self.prf = prf
        self.base_dir = os.fspath(base_dir)
        self._cache = bool(cache)
        self._cache_budget = cache_budget_bytes
        self._token = token
        self._processes: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._addresses: Dict[str, Tuple[str, int]] = {}
        # Lifecycle lock: spawn/kill/restart/close are called from both
        # the owning thread and the watchdog; reentrant because the
        # watchdog sweep holds it across restart_shard.
        self._lifecycle = threading.RLock()
        if events_limit < 1:
            raise ValueError(f"events_limit must be >= 1, got {events_limit}")
        # Bounded: a flapping worker logs forever, memory must not.
        # Dropped (oldest-evicted) events are counted, and the counters
        # ride the `status` ops surface so the truncation is visible.
        self.events: "collections.deque[dict]" = collections.deque(
            maxlen=int(events_limit)
        )
        self._events_logged = 0
        self._events_dropped = 0
        self._events_lock = threading.Lock()
        self._watchdog_interval = watchdog_interval
        self._watchdog_max_restarts = int(watchdog_max_restarts)
        self._watchdog_probe_timeout = float(watchdog_probe_timeout)
        self._watchdog_stop = threading.Event()
        self._watchdog_thread: Optional[threading.Thread] = None
        self._restarts: Dict[str, int] = {}
        self._gave_up: Set[str] = set()
        # Live-rebalance state: one handoff at a time; participants are
        # watched so a mid-handoff worker death aborts the rebalance
        # (rollback + restart from the committed map) instead of being
        # blindly respawned into a half-mutated topology.
        self._rebalance_busy = threading.Lock()
        self._rebalance_record: Optional[dict] = None
        self._rebalance_abort = threading.Event()
        self._rebalances_completed = 0
        self._rebalances_aborted = 0
        self._rebalances_recovered: Optional[str] = None
        #: Test/ops hook called at each handoff phase boundary with one
        #: of ``"pre_prepare"``, ``"post_prepare"``, ``"post_ack"``,
        #: ``"post_commit"`` — the chaos suite uses it to SIGKILL the
        #: whole service at exact kill-points.
        self.rebalance_phase_hook: Optional[Callable[[str], None]] = None
        estimator = SketchEstimator(PrivacyParams(p=prf.p), prf)
        self.coordinator = ShardCoordinator(
            shard_map,
            estimator,
            checkpoint_path=os.path.join(self.base_dir, "shard_map.json"),
            timeout=timeout,
            pool_size=pool_size,
            retry=retry,
            breaker_threshold=breaker_threshold,
            breaker_reset=breaker_reset,
        )
        self.coordinator.rebalance_executor = self

    @classmethod
    def from_store(
        cls, store, prf, n_shards: int, base_dir: str | os.PathLike, **kwargs
    ) -> "ShardedService":
        """Split ``store`` into ``n_shards`` and lay out the service
        directory.  Does not start workers — call :meth:`start`."""
        base_dir = os.fspath(base_dir)
        os.makedirs(base_dir, exist_ok=True)
        shards = store.split_by_user_range(n_shards)
        specs = []
        for index, shard in enumerate(shards):
            store_path = os.path.join(base_dir, f"shard-{index}.npz")
            save_store(
                shard, store_path, include_iterations=True, format="columnar", prf=prf
            )
            universe = user_universe(shard.to_columns())
            specs.append(
                ShardSpec(
                    shard_id=f"shard-{index}",
                    store_path=store_path,
                    num_users=len(universe),
                    first_user=universe[0] if universe else "",
                    last_user=universe[-1] if universe else "",
                )
            )
        shard_map = ShardMap(subsets=tuple(store.subsets), shards=tuple(specs))
        return cls(shard_map, prf, base_dir, **kwargs)

    @classmethod
    def from_checkpoint(
        cls, base_dir: str | os.PathLike, prf, **kwargs
    ) -> "ShardedService":
        """Crash recovery: rebuild the supervisor from the checkpointed
        shard map, reattaching to the shard stores already on disk.

        The warm-rejoin contract: when the checkpoint records persistent
        cache state (:attr:`ShardMap.cache_state`) and the caller does
        not override it, caching is re-enabled with the recorded budget —
        recovered workers reattach to their cache-generation directories
        and answer repeat queries without a single new PRF call, with
        zero operator action.

        A checkpoint carrying an in-flight rebalance record resolves it
        here, from the record alone — no operator action, no other
        files consulted:

        * ``phase == "prepared"`` → **roll back**: the committed map is
          still authoritative and its store files were never mutated;
          the half-written handoff files are deleted and the record
          cleared.
        * ``phase == "acked"`` → **roll forward**: the pending specs'
          store files were fsync'd before the acked checkpoint was
          written, so the new topology is installed as the committed
          map and superseded files are deleted.
        """
        base_dir = os.fspath(base_dir)
        checkpoint_path = os.path.join(base_dir, "shard_map.json")
        shard_map = ShardMap.load(checkpoint_path)
        action = None
        cleanup: List[str] = []
        record = shard_map.rebalance
        if record is not None:
            if record.get("phase") == "acked":
                action = "rolled_forward"
                specs = tuple(
                    _spec_from_payload(entry) for entry in record["pending_shards"]
                )
                referenced = {spec.store_path for spec in specs}
                cleanup = [
                    path
                    for path in list(record.get("obsolete_paths", []))
                    + list(record.get("pending_paths", []))
                    if path not in referenced
                ]
                shard_map = ShardMap(
                    subsets=shard_map.subsets,
                    shards=specs,
                    cache_state=shard_map.cache_state,
                )
            else:
                # "prepared" — or anything unrecognised, where rollback
                # is the only safe default: the committed map and its
                # files are untouched by construction.
                action = "rolled_back"
                cleanup = list(record.get("pending_paths", []))
                shard_map = replace(shard_map, rebalance=None)
            # Persist the resolution *before* deleting anything: a crash
            # during recovery must find either the old record (recovery
            # re-runs) or the resolved map (cleanup re-runs harmlessly).
            shard_map.save(checkpoint_path)
            for path in cleanup:
                with contextlib.suppress(OSError):
                    os.unlink(path)
        state = shard_map.cache_state
        if state is not None and state.get("enabled") and "cache" not in kwargs:
            kwargs["cache"] = True
            if state.get("budget_bytes") is not None:
                kwargs.setdefault("cache_budget_bytes", int(state["budget_bytes"]))
        service = cls(shard_map, prf, base_dir, **kwargs)
        if action is not None:
            service._rebalances_recovered = action
            service._log_event(
                "rebalance_recovered",
                record.get("donor"),
                action=action,
                op=record.get("op"),
                phase=record.get("phase"),
            )
        return service

    # -- lifecycle ------------------------------------------------------
    def start(self, timeout: float = 30.0) -> "ShardedService":
        """Spawn every shard worker, wait for each to bind, join them all."""
        with self._lifecycle:
            for spec in self.shard_map.shards:
                self._spawn(spec)
            for spec in self.shard_map.shards:
                host, port = self._wait_ready(spec, timeout)
                self._addresses[spec.shard_id] = (host, port)
                self.coordinator.join(spec.shard_id, host, port, self._token)
            self.checkpoint()
        if self._watchdog_interval is not None and self._watchdog_thread is None:
            self._watchdog_stop.clear()
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop, daemon=True, name="repro-watchdog"
            )
            self._watchdog_thread.start()
        return self

    # -- cache-state checkpoint (the warm-rejoin contract) --------------
    def _collect_cache_state(self) -> Optional[dict]:
        """Per-shard cache-generation metadata, or ``None`` when caching
        is off.  A *generation* is one ``store-<hash>/`` directory the
        worker's :class:`~repro.server.engine.SketchEvaluationCache`
        populated; recording them alongside the shard map is what lets a
        recovered supervisor prove its workers rejoined warm."""
        if not self._cache:
            return None
        generations: Dict[str, List[str]] = {}
        for spec in self.shard_map.shards:
            root = os.path.join(self.base_dir, "cache", spec.shard_id)
            try:
                generations[spec.shard_id] = sorted(
                    name
                    for name in os.listdir(root)
                    if name.startswith("store-")
                )
            except OSError:
                generations[spec.shard_id] = []
        return {
            "enabled": True,
            "budget_bytes": self._cache_budget,
            "generations": generations,
        }

    def checkpoint(self) -> None:
        """Re-save the shard map with current persistent-cache metadata."""
        self.shard_map = replace(
            self.shard_map, cache_state=self._collect_cache_state()
        )
        self.shard_map.save(os.path.join(self.base_dir, "shard_map.json"))

    # -- the watchdog ---------------------------------------------------
    def _log_event(self, kind: str, shard_id: Optional[str] = None, **detail) -> None:
        event = {
            "time": time.time(),
            "monotonic": time.monotonic(),
            "event": kind,
            "shard_id": shard_id,
        }
        event.update(detail)
        with self._events_lock:
            if len(self.events) == self.events.maxlen:
                self._events_dropped += 1
            self.events.append(event)
            self._events_logged += 1

    def events_summary(self) -> dict:
        """Event-log counters for the ``status`` ops surface: how many
        events were logged over the service lifetime, how many the
        bounded buffer evicted, and the buffer's capacity."""
        with self._events_lock:
            return {
                "logged": self._events_logged,
                "dropped": self._events_dropped,
                "buffered": len(self.events),
                "limit": self.events.maxlen,
            }

    def _probe(self, shard_id: str) -> Optional[str]:
        """One health probe; ``None`` = healthy, else the failure reason.

        Two layers: the process must be alive, *and* a ``ping`` over a
        fresh connection must answer within the probe timeout — a worker
        stopped mid-schedule (SIGSTOP, a wedged GIL) is alive by the
        first test and hung by the second.
        """
        process = self._processes.get(shard_id)
        if process is None or not process.is_alive():
            return "dead"
        address = self._addresses.get(shard_id)
        if address is None:
            return "unaddressed"
        try:
            client = RemoteQueryEngine(
                address[0],
                address[1],
                self._token,
                timeout=self._watchdog_probe_timeout,
            )
            try:
                client.ping()
            finally:
                client.close()
        except Exception:  # noqa: BLE001 - any probe failure means unhealthy
            return "hung"
        return None

    def _watchdog_loop(self) -> None:
        while not self._watchdog_stop.wait(self._watchdog_interval):
            self._sweep()

    def _sweep(self) -> None:
        """One watchdog pass: probe every shard, restart the unhealthy.

        A dead worker that is *participating in an active rebalance* is
        not blindly respawned: the watchdog flags the rebalance for
        abort instead (the driving thread rolls back, restarts the
        participants from the committed map, and clears the record), and
        the normal restart path resumes on the next sweep.  Respawning
        mid-handoff could resurrect a donor that already shed its range
        while the flip never committed — an abort is the only action
        that provably restores the committed topology.
        """
        for spec in self.shard_map.shards:
            if self._watchdog_stop.is_set():
                return
            shard_id = spec.shard_id
            if shard_id in self._gave_up:
                continue
            reason = self._probe(shard_id)
            if reason is None:
                continue
            record = self._rebalance_record
            if record is not None and shard_id in record.get("participants", ()):
                if not self._rebalance_abort.is_set():
                    self._rebalance_abort.set()
                    self._log_event(
                        "rebalance_abort_requested", shard_id, reason=reason
                    )
                continue
            self._log_event("probe_failed", shard_id, reason=reason)
            with self._lifecycle:
                if self._restarts.get(shard_id, 0) >= self._watchdog_max_restarts:
                    self._gave_up.add(shard_id)
                    self._log_event(
                        "gave_up",
                        shard_id,
                        restarts=self._restarts.get(shard_id, 0),
                    )
                    continue
                self._restarts[shard_id] = self._restarts.get(shard_id, 0) + 1
                try:
                    self.restart_shard(shard_id)
                except Exception as exc:  # noqa: BLE001 - logged, next sweep retries
                    self._log_event("restart_failed", shard_id, error=str(exc))
                else:
                    self._log_event(
                        "restarted", shard_id, restarts=self._restarts[shard_id]
                    )

    def _ready_path(self, shard_id: str) -> str:
        return os.path.join(self.base_dir, "ready", shard_id)

    def _spawn(self, spec: ShardSpec, warm_path: Optional[str] = None) -> None:
        os.makedirs(os.path.join(self.base_dir, "ready"), exist_ok=True)
        ready_path = self._ready_path(spec.shard_id)
        with contextlib.suppress(FileNotFoundError):
            os.unlink(ready_path)
        config = {
            "store_path": spec.store_path,
            "prf_spec": self.prf.spec(),
            "ready_path": ready_path,
            "token": self._token,
            "cache_dir": (
                os.path.join(self.base_dir, "cache", spec.shard_id)
                if self._cache
                else None
            ),
            "cache_budget_bytes": self._cache_budget,
            "warm_path": warm_path,
        }
        process = _preferred_context().Process(
            target=run_shard_worker,
            args=(config,),
            daemon=True,
            name=f"repro-{spec.shard_id}",
        )
        process.start()
        self._processes[spec.shard_id] = process

    def _wait_ready(self, spec: ShardSpec, timeout: float) -> Tuple[str, int]:
        ready_path = self._ready_path(spec.shard_id)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(ready_path):
                with open(ready_path, "r", encoding="utf-8") as handle:
                    text = handle.read().strip()
                if text:
                    host, port = text.split()
                    return host, int(port)
            process = self._processes.get(spec.shard_id)
            if process is not None and not process.is_alive():
                raise RuntimeError(
                    f"shard worker {spec.shard_id!r} exited before binding "
                    f"(exit code {process.exitcode})"
                )
            time.sleep(0.02)
        raise RuntimeError(
            f"shard worker {spec.shard_id!r} did not report ready within {timeout}s"
        )

    # -- live rebalancing ----------------------------------------------
    def _worker_call(self, shard_id: str, request: QueryRequest, timeout: float):
        """One admin RPC to a worker over a fresh direct connection."""
        address = self._addresses.get(shard_id)
        if address is None:
            raise ShardUnavailableError(
                f"shard {shard_id!r} has no live worker address; "
                "is the service started?"
            )
        with RemoteQueryEngine(
            address[0], address[1], self._token, timeout=timeout
        ) as client:
            return client.execute(request).result

    def _hook(self, phase: str) -> None:
        hook = self.rebalance_phase_hook
        if hook is not None:
            hook(phase)

    def _check_abort(self) -> None:
        if self._rebalance_abort.is_set():
            raise ShardUnavailableError(
                "rebalance aborted: a participant worker died mid-handoff"
            )

    def _pace(self, pace_s: float) -> None:
        """Breathe between handoff phases (``pace_s`` > 0 throttles).

        Pacing trades handoff duration for serving impact: the phases
        themselves are already off the query path (prepare and the
        staged drop/adopt run while workers keep serving; the barrier
        holds only for an engine pointer swap and the map flip), and a
        pause between them lets the serving tier absorb each phase's
        cache/CPU ripple before the next starts.  The wait rides the
        abort event, so a participant death mid-pace wakes the driver
        immediately instead of after the full pause.
        """
        if pace_s > 0:
            self._rebalance_abort.wait(pace_s)
        self._check_abort()

    def _fresh_path(self, stem: str, suffix: str) -> str:
        """A base_dir path no live or pending file occupies.

        Rebalance files are *generation-versioned*: a handoff never
        overwrites a file the committed map references, so recovery can
        always serve from the committed files no matter where a crash
        landed.
        """
        candidate = os.path.join(self.base_dir, f"{stem}{suffix}")
        n = 1
        while os.path.exists(candidate):
            candidate = os.path.join(self.base_dir, f"{stem}-g{n}{suffix}")
            n += 1
        return candidate

    def _new_shard_id(self) -> str:
        taken = {spec.shard_id for spec in self.shard_map.shards}
        taken.update(self._processes)
        n = 0
        for shard_id in taken:
            match = re.fullmatch(r"shard-(\d+)", shard_id)
            if match:
                n = max(n, int(match.group(1)) + 1)
        while f"shard-{n}" in taken:
            n += 1
        return f"shard-{n}"

    def _install_record(self, record: dict) -> None:
        """Checkpoint an in-flight rebalance record (durably)."""
        self._rebalance_record = record
        self.shard_map = replace(self.shard_map, rebalance=record)
        self.checkpoint()

    def _spec_for(self, shard_id: str) -> ShardSpec:
        for spec in self.shard_map.shards:
            if spec.shard_id == shard_id:
                return spec
        raise ValueError(
            f"unknown shard id {shard_id!r}; the shard map lists "
            f"{[spec.shard_id for spec in self.shard_map.shards]}"
        )

    def _abort_rebalance(self, record: dict, reason: str, mutated: List[str]) -> None:
        """Roll a failed handoff back to the committed topology.

        The committed map's files were never mutated (generation
        versioning), so rollback is: delete the pending files, clear the
        record from the durable checkpoint, retire any uncommitted
        recipient worker, and restart every participant whose in-memory
        store may have mutated — they reload the committed files and the
        cluster is exactly where it was before the attempt.
        """
        with self._lifecycle:
            self.shard_map = replace(self.shard_map, rebalance=None)
            self._rebalance_record = None
            with contextlib.suppress(Exception):
                self.checkpoint()
            for path in record.get("pending_paths", ()):
                with contextlib.suppress(OSError):
                    os.unlink(path)
            committed = {spec.shard_id for spec in self.shard_map.shards}
            for shard_id in record.get("participants", ()):
                if shard_id in committed:
                    continue
                process = self._processes.pop(shard_id, None)
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(timeout=10.0)
                self._addresses.pop(shard_id, None)
            for shard_id in mutated:
                if shard_id not in committed:
                    continue
                try:
                    self.restart_shard(shard_id)
                except Exception as exc:  # noqa: BLE001 - watchdog retries
                    self._log_event("restart_failed", shard_id, error=str(exc))
        self._rebalances_aborted += 1
        self._log_event(
            "rebalance_aborted",
            record.get("donor"),
            op=record.get("op"),
            reason=reason,
        )

    def rebalance_split(
        self,
        shard_id: str,
        boundary: Optional[str] = None,
        timeout: float = 60.0,
        pace_s: float = 0.0,
    ) -> dict:
        """Split one live shard's user range in two, under traffic.

        Two-phase: *prepare* (the donor carves both halves to fresh
        fsync'd store files plus a warm sidecar, and the ``prepared``
        record is checkpointed), then *commit* (a fresh worker serves
        the right half, acks by answering ``ping`` — checkpointed as
        ``acked`` — the donor pre-stages its shrunken engine, and
        inside the coordinator's commit barrier the staged engine swaps
        in and the routing map flips).  Queries keep flowing
        throughout; a crash at any point recovers from the checkpoint
        alone (see :meth:`from_checkpoint`).  ``pace_s`` > 0 pauses
        between phases to amortise serving impact (see :meth:`_pace`).
        """
        if not self._rebalance_busy.acquire(blocking=False):
            raise ValueError(
                "a rebalance is already in progress; retry once it completes"
            )
        mutated: List[str] = []
        record: Optional[dict] = None
        try:
            self._rebalance_abort.clear()
            self._hook("pre_prepare")
            donor = self._spec_for(shard_id)
            new_id = self._new_shard_id()
            left_path = self._fresh_path(f"{shard_id}-split", ".npz")
            right_path = self._fresh_path(new_id, ".npz")
            warm_path = self._fresh_path(f"{new_id}-warm", ".npz")
            # -- prepare ------------------------------------------------
            snap = self._worker_call(
                shard_id,
                ShardSnapshotRequest.build(
                    "carve",
                    right_path,
                    boundary=boundary,
                    left_path=left_path,
                    warm_path=warm_path,
                ),
                timeout,
            )
            chosen = snap["boundary"]
            donor_spec = ShardSpec(
                shard_id,
                left_path,
                int(snap["left"]["num_users"]),
                snap["left"]["first_user"],
                snap["left"]["last_user"],
            )
            recipient_spec = ShardSpec(
                new_id,
                right_path,
                int(snap["right"]["num_users"]),
                snap["right"]["first_user"],
                snap["right"]["last_user"],
            )
            pending: List[ShardSpec] = []
            for spec in self.shard_map.shards:
                if spec.shard_id == shard_id:
                    pending.extend((donor_spec, recipient_spec))
                else:
                    pending.append(spec)
            record = {
                "op": "split",
                "phase": "prepared",
                "donor": shard_id,
                "recipient": new_id,
                "boundary": chosen,
                "participants": [shard_id, new_id],
                "pending_shards": [_spec_to_payload(spec) for spec in pending],
                "pending_paths": [left_path, right_path, warm_path],
                "obsolete_paths": [donor.store_path],
            }
            self._install_record(record)
            self._log_event(
                "rebalance_prepared",
                shard_id,
                op="split",
                boundary=chosen,
                recipient=new_id,
            )
            self._hook("post_prepare")
            self._pace(pace_s)
            # -- ack: the recipient proves possession -------------------
            with self._lifecycle:
                self._spawn(recipient_spec, warm_path=warm_path)
            host, port = self._wait_ready(recipient_spec, timeout)
            self._addresses[new_id] = (host, port)
            self._worker_call(new_id, PingRequest.build(), timeout)
            record = dict(record, phase="acked")
            self._install_record(record)
            self._log_event("rebalance_acked", new_id, op="split")
            self._hook("post_ack")
            self._pace(pace_s)
            # -- commit: pre-stage the shed, then barrier + flip --------
            new_map = ShardMap(
                subsets=self.shard_map.subsets,
                shards=tuple(pending),
                cache_state=self.shard_map.cache_state,
            )
            # The donor builds its shrunken engine while still serving
            # the full range; the barrier below holds only for the
            # pointer swap and the map flip.
            self._worker_call(
                shard_id, ShardDropRequest.build(chosen, stage="prepare"), timeout
            )
            self._check_abort()
            with self.coordinator.rebalance_barrier(timeout):
                mutated.append(shard_id)
                self._worker_call(
                    shard_id, ShardDropRequest.build(chosen, stage="commit"), timeout
                )
                self.coordinator.apply_rebalance(
                    new_map,
                    joins={new_id: (host, port, self._token)},
                    removals=[],
                )
                self.shard_map = new_map
            self._rebalance_record = None
            self.checkpoint()
            for path in (donor.store_path, warm_path):
                with contextlib.suppress(OSError):
                    os.unlink(path)
            self._rebalances_completed += 1
            self._log_event(
                "rebalance_committed",
                shard_id,
                op="split",
                boundary=chosen,
                recipient=new_id,
            )
            self._hook("post_commit")
            return {
                "op": "split",
                "donor": shard_id,
                "recipient": new_id,
                "boundary": chosen,
                "shards": [spec.shard_id for spec in new_map.shards],
            }
        except BaseException as exc:
            if record is not None and self._rebalance_record is not None:
                self._abort_rebalance(record, str(exc), mutated)
            raise
        finally:
            self._rebalance_record = None
            self._rebalance_abort.clear()
            self._rebalance_busy.release()

    def rebalance_merge(
        self,
        left: str,
        right: str,
        timeout: float = 60.0,
        pace_s: float = 0.0,
    ) -> dict:
        """Merge two *adjacent* live shards into the left one, under traffic.

        Prepare: the right shard exports its full store and warm cache
        to fsync'd handoff files (checkpointed ``prepared``).  Ack: the
        left shard *stages* the adoption — loads the handoff, persists
        the merged store, splices the warm cache — while still serving
        only its own range (checkpointed ``acked``).  Commit, inside
        the barrier: the staged engine swaps in and the routing map
        drops the right shard, whose worker then retires.  ``pace_s``
        > 0 pauses between phases (see :meth:`_pace`).
        """
        if not self._rebalance_busy.acquire(blocking=False):
            raise ValueError(
                "a rebalance is already in progress; retry once it completes"
            )
        mutated: List[str] = []
        record: Optional[dict] = None
        try:
            self._rebalance_abort.clear()
            self._hook("pre_prepare")
            left_spec = self._spec_for(left)
            right_spec = self._spec_for(right)
            order = [spec.shard_id for spec in self.shard_map.shards]
            if order.index(right) != order.index(left) + 1:
                raise ValueError(
                    f"shards {left!r} and {right!r} are not adjacent in range "
                    f"order {order}; only neighbouring shards can merge"
                )
            merged_path = self._fresh_path(f"{left}-merged", ".npz")
            handoff_path = self._fresh_path(f"{right}-handoff", ".npz")
            warm_path = self._fresh_path(f"{right}-handoff-warm", ".npz")
            # -- prepare ------------------------------------------------
            self._worker_call(
                right,
                ShardSnapshotRequest.build(
                    "export", handoff_path, warm_path=warm_path
                ),
                timeout,
            )
            merged_spec = ShardSpec(
                left,
                merged_path,
                left_spec.num_users + right_spec.num_users,
                left_spec.first_user if left_spec.num_users else right_spec.first_user,
                right_spec.last_user if right_spec.num_users else left_spec.last_user,
            )
            pending = tuple(
                merged_spec if spec.shard_id == left else spec
                for spec in self.shard_map.shards
                if spec.shard_id != right
            )
            record = {
                "op": "merge",
                "phase": "prepared",
                "donor": right,
                "recipient": left,
                "boundary": "",
                "participants": [left, right],
                "pending_shards": [_spec_to_payload(spec) for spec in pending],
                "pending_paths": [handoff_path, warm_path, merged_path],
                "obsolete_paths": [left_spec.store_path, right_spec.store_path],
            }
            self._install_record(record)
            self._log_event(
                "rebalance_prepared", right, op="merge", recipient=left
            )
            self._hook("post_prepare")
            self._pace(pace_s)
            # -- ack: the left shard stages the adoption ----------------
            # Heavy lifting (load + merge + persist + cache splice)
            # happens here, while the left worker keeps answering for
            # its own range only; the merged store is durably on disk
            # before ``acked`` is checkpointed, so roll-forward recovery
            # never needs the staged in-memory state.
            new_map = ShardMap(
                subsets=self.shard_map.subsets,
                shards=pending,
                cache_state=self.shard_map.cache_state,
            )
            self._worker_call(
                left,
                ShardAdoptRequest.build(
                    handoff_path, merged_path, warm_path=warm_path, stage="prepare"
                ),
                timeout,
            )
            record = dict(record, phase="acked")
            self._install_record(record)
            self._log_event("rebalance_acked", left, op="merge")
            self._hook("post_ack")
            self._pace(pace_s)
            # -- commit: barrier, staged swap, flip ---------------------
            with self.coordinator.rebalance_barrier(timeout):
                mutated.append(left)
                self._worker_call(
                    left,
                    ShardAdoptRequest.build(
                        handoff_path, merged_path, warm_path=warm_path, stage="commit"
                    ),
                    timeout,
                )
                self.coordinator.apply_rebalance(new_map, joins={}, removals=[right])
                self.shard_map = new_map
            self._rebalance_record = None
            self.checkpoint()
            with self._lifecycle:
                process = self._processes.pop(right, None)
                if process is not None and process.is_alive():
                    process.terminate()
                    process.join(timeout=10.0)
                    if process.is_alive():  # pragma: no cover - stuck worker
                        process.kill()
                        process.join(timeout=5.0)
                self._addresses.pop(right, None)
                self._restarts.pop(right, None)
                self._gave_up.discard(right)
            for path in (
                left_spec.store_path,
                right_spec.store_path,
                handoff_path,
                warm_path,
            ):
                with contextlib.suppress(OSError):
                    os.unlink(path)
            self._rebalances_completed += 1
            self._log_event(
                "rebalance_committed", right, op="merge", recipient=left
            )
            self._hook("post_commit")
            return {
                "op": "merge",
                "donor": right,
                "recipient": left,
                "shards": [spec.shard_id for spec in new_map.shards],
            }
        except BaseException as exc:
            if record is not None and self._rebalance_record is not None:
                self._abort_rebalance(record, str(exc), mutated)
            raise
        finally:
            self._rebalance_record = None
            self._rebalance_abort.clear()
            self._rebalance_busy.release()

    def rebalance_status(self) -> dict:
        """Current ranges, any in-flight handoff, and lifetime counters."""
        with self._lifecycle:
            shards = []
            for spec in self.shard_map.shards:
                process = self._processes.get(spec.shard_id)
                entry = _spec_to_payload(spec)
                entry["live"] = bool(
                    process is not None
                    and process.is_alive()
                    and spec.shard_id in self._addresses
                )
                shards.append(entry)
        record = self._rebalance_record
        active = None
        if record is not None:
            active = {
                key: record.get(key)
                for key in ("op", "phase", "donor", "recipient", "boundary")
            }
        return {
            "shards": shards,
            "active": active,
            "completed": self._rebalances_completed,
            "aborted": self._rebalances_aborted,
            "recovered": self._rebalances_recovered,
        }

    def kill_shard(self, shard_id: str) -> None:
        """Fault injection: SIGKILL one worker, leaving membership as-is
        so the next query exercises the coordinator's retry path."""
        with self._lifecycle:
            process = self._processes[shard_id]
            process.kill()
            process.join(timeout=10.0)

    def restart_shard(self, shard_id: str, timeout: float = 30.0) -> None:
        """Respawn a worker from its checkpointed store and rejoin it.

        The worker reuses its persistent cache directory (when caching
        is on), so it comes back **warm**: repeat queries hit the cache
        and cost no new PRF calls.  Rejoining creates a fresh shard
        handle, so the shard's circuit breaker restarts closed.
        """
        with self._lifecycle:
            spec = next(
                spec for spec in self.shard_map.shards if spec.shard_id == shard_id
            )
            old = self._processes.get(shard_id)
            if old is not None and old.is_alive():
                old.kill()
                old.join(timeout=10.0)
            self.coordinator.leave(shard_id, drain=False)
            self._spawn(spec)
            host, port = self._wait_ready(spec, timeout)
            self._addresses[shard_id] = (host, port)
            self.coordinator.join(shard_id, host, port, self._token)
            self.checkpoint()

    def close(self) -> None:
        # Stop the watchdog first: a sweep racing the teardown would
        # faithfully "restart" every worker we are about to kill.
        self._watchdog_stop.set()
        thread, self._watchdog_thread = self._watchdog_thread, None
        if thread is not None:
            thread.join(timeout=10.0)
        with self._lifecycle:
            self.coordinator.close()
            for process in self._processes.values():
                if process.is_alive():
                    process.terminate()
            for process in self._processes.values():
                process.join(timeout=10.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.kill()
                    process.join(timeout=5.0)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@contextlib.contextmanager
def sharded_service(
    store, prf, n_shards: int, base_dir: str | os.PathLike, **kwargs
):
    """Split ``store``, start the workers, yield the running service,
    and always tear the worker processes down on exit."""
    service = ShardedService.from_store(store, prf, n_shards, base_dir, **kwargs)
    try:
        yield service.start()
    finally:
        service.close()
