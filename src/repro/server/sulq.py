"""Appendix A — sketches inside a trusted-third-party server.

The appendix sketches (pun intended) a dual-mode statistical server:

* **Paid mode** — classic SULQ-style *output perturbation*: the server
  answers a count query exactly and adds noise of magnitude ``E``; to stay
  private it may answer at most ``min(E^2, M)`` queries, after which it
  shuts that mode down.
* **Free mode** — *input perturbation via sketches*: the administrator
  sketches every row once; queries are answered from the sketches alone.
  Noise is ``O(sqrt(M))`` per query but the number of queries is
  **unlimited**, because the sketches already protect each row
  information-theoretically — the attacker "can potentially learn [only]
  the sketches themselves".

This sidesteps the Dinur–Nissim linear-noise bound for all but a
negligible fraction of queries: with a random sketch instance, a fixed
query's error is ``O(sqrt(M))`` except with probability exponentially
small in ``M`` (the bad event is over the sketch randomness, which an
adversary cannot steer).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..core.estimator import SketchEstimator
from ..core.sketch import Sketcher
from ..data.profiles import ProfileDatabase
from .collector import SketchStore, publish_database
from .engine import SketchEvaluationCache

__all__ = ["QueryBudgetExhausted", "QueryRecord", "SulqServer", "DualModeServer"]


class QueryBudgetExhausted(RuntimeError):
    """Raised when the paid (output-perturbation) mode is out of queries."""


@dataclass(frozen=True)
class QueryRecord:
    """Audit-log entry: what was asked and what was answered."""

    mode: str
    subset: Tuple[int, ...]
    value: Tuple[int, ...]
    answer: float


@dataclass
class SulqServer:
    """Output-perturbation server (the paid mode of Appendix A).

    Parameters
    ----------
    database:
        The trusted server holds the raw rows (this is the one component
        of the reproduction where a trusted party exists, exactly as in
        Appendix A / the SULQ framework).
    noise_magnitude:
        The per-query noise scale ``E``.  The appendix requires
        ``E <= sqrt(M)``.
    rng:
        Noise source.
    """

    database: ProfileDatabase
    noise_magnitude: float
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        limit = math.sqrt(len(self.database))
        if self.noise_magnitude <= 0:
            raise ValueError(f"noise magnitude must be positive, got {self.noise_magnitude}")
        if self.noise_magnitude > limit:
            raise ValueError(
                f"noise magnitude E={self.noise_magnitude} exceeds sqrt(M)={limit:.1f}; "
                "larger E wastes accuracy with no extra query budget"
            )
        self._answered = 0
        self._log: List[QueryRecord] = []

    @property
    def query_budget(self) -> int:
        """Total queries this mode may answer: ``min(E^2, M)``."""
        return int(min(self.noise_magnitude**2, len(self.database)))

    @property
    def queries_remaining(self) -> int:
        return max(0, self.query_budget - self._answered)

    @property
    def audit_log(self) -> Tuple[QueryRecord, ...]:
        return tuple(self._log)

    def count(self, subset: Sequence[int], value: Sequence[int]) -> float:
        """Exact count plus Gaussian noise of scale ``E``; budgeted."""
        if self.queries_remaining == 0:
            raise QueryBudgetExhausted(
                f"paid mode exhausted its {self.query_budget}-query budget "
                f"(E={self.noise_magnitude}); switch to the free sketch mode"
            )
        exact = self.database.exact_count(subset, value)
        noisy = exact + float(self.rng.normal(0.0, self.noise_magnitude))
        self._answered += 1
        record = QueryRecord("paid", tuple(subset), tuple(value), noisy)
        self._log.append(record)
        return noisy


class DualModeServer:
    """Appendix A's recommended deployment: paid + free modes side by side.

    The server administrator devises the subsets to sketch, sketches every
    row once (the trusted step), and thereafter:

    * ``count(..., mode="paid")`` — low noise ``E``, hard budget
      ``min(E^2, M)`` queries;
    * ``count(..., mode="free")`` — sketch-based, ``O(sqrt(M))`` noise,
      no budget at all.

    "The amount of noise that the system adds is about the same as SULQ
    adds in the situation where it is tuned to answer as many queries as
    possible" — benchmark E15 verifies exactly that crossover.
    """

    def __init__(
        self,
        database: ProfileDatabase,
        sketcher: Sketcher,
        estimator: SketchEstimator,
        subsets: Sequence[Sequence[int]],
        noise_magnitude: float,
        rng: np.random.Generator | None = None,
        cache_dir: str | os.PathLike | None = None,
        cache_budget_bytes: int | None = None,
        memory_budget_bytes: int | None = None,
        generation_ttl_seconds: float | None = None,
    ) -> None:
        self.paid = SulqServer(
            database,
            noise_magnitude,
            rng if rng is not None else np.random.default_rng(),
        )
        self.store: SketchStore = publish_database(database, sketcher, subsets)
        self._estimator = estimator
        # Free mode is where "unlimited queries" lives: analysts replay
        # the same counts indefinitely, so evaluations are cached per
        # (subset, value) — repeats never touch the PRF again.  With
        # cache_dir the columns survive restarts too (bit-packed on
        # disk, keyed by the store's content hash — which includes the
        # PRF construction, so either backend may serve — optionally
        # capped by cache_budget_bytes with an LRU sweep, by
        # memory_budget_bytes in-process, and aged out per generation
        # with generation_ttl_seconds).
        self._cache = SketchEvaluationCache(
            self.store, estimator, cache_dir=cache_dir,
            cache_budget_bytes=cache_budget_bytes,
            memory_budget_bytes=memory_budget_bytes,
            generation_ttl_seconds=generation_ttl_seconds,
        )
        self._log: List[QueryRecord] = []

    @property
    def audit_log(self) -> Tuple[QueryRecord, ...]:
        return tuple(self._log) + self.paid.audit_log

    def count(self, subset: Sequence[int], value: Sequence[int], mode: str = "free") -> float:
        """Answer a conjunctive count in the requested mode."""
        return self.count_many(subset, [value], mode=mode)[0]

    def count_many(
        self,
        subset: Sequence[int],
        values: Sequence[Sequence[int]],
        mode: str = "free",
    ) -> List[float]:
        """Answer several counts over one subset in the requested mode.

        Paid mode stays a per-value loop (each answer draws fresh noise
        and spends budget) but checks the whole batch against the budget
        first, so a mid-batch exhaustion never spends budget on answers
        the caller won't receive; free mode resolves all values from a
        single cached block evaluation.
        """
        if mode == "paid":
            # A single query keeps SulqServer's own (tested) exhaustion
            # message; larger batches are all-or-nothing.
            if len(values) > 1 and len(values) > self.paid.queries_remaining:
                raise QueryBudgetExhausted(
                    f"batch of {len(values)} paid queries exceeds the remaining "
                    f"budget of {self.paid.queries_remaining}; switch to the free "
                    "sketch mode"
                )
            return [self.paid.count(subset, value) for value in values]
        if mode != "free":
            raise ValueError(f"unknown mode {mode!r}; expected 'paid' or 'free'")
        key = tuple(int(i) for i in subset)
        if not self.store.has_subset(key):
            raise KeyError(
                f"free mode has no sketches for subset {key}; the administrator "
                f"sketched {sorted(self.store.subsets)}"
            )
        value_ts = [tuple(int(bit) for bit in v) for v in values]
        answers = []
        for value_t, estimate in zip(value_ts, self._cache.estimates(key, value_ts)):
            answer = estimate.count
            self._log.append(QueryRecord("free", key, value_t, answer))
            answers.append(answer)
        return answers
