"""Resilience primitives for the serving tier: retries, breakers, deadlines.

Three small, composable pieces — each deterministic and clock-injectable
so the chaos suite can pin their behaviour exactly:

* :class:`RetryPolicy` — exponential backoff with *deterministic seeded
  jitter*.  The jitter for attempt ``i`` is a pure function of
  ``(seed, token, i)`` (blake2b-derived), so a seeded policy produces
  the same schedule on every run and every host; ``schedule()`` returns
  the full delay sequence up front, truncated to the per-request retry
  ``budget`` of cumulative sleep seconds.
* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine, one per shard in the coordinator.  ``failure_threshold``
  consecutive failures open the circuit; after ``reset_timeout`` seconds
  a single half-open probe is allowed through, and its outcome closes or
  re-opens the breaker.  The clock is injectable, so tests drive the
  state machine without sleeping.
* :class:`Deadline` — an absolute point on a monotonic clock, carried
  as a *relative* ``deadline_ms`` field on the wire (clocks across hosts
  are not synchronised).  :data:`DEADLINE_VAR` hands the active deadline
  from the server's perimeter to the engine executing the request —
  including across the dispatch-pool thread boundary via
  :func:`run_with_deadline` — so coordinator fan-out can derive
  per-shard socket timeouts from the remaining budget.

:class:`DeadlineExceeded` is the typed error these primitives raise; the
protocol maps it to the ``deadline_exceeded`` error envelope and back.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "current_deadline",
    "deadline_scope",
    "run_with_deadline",
]


class DeadlineExceeded(RuntimeError):
    """A request's deadline expired before (or while) it was served."""


class CircuitOpenError(ConnectionError):
    """A call was refused because the target's circuit breaker is open."""


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def _unit_jitter(seed: int, token: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from ``(seed, token, attempt)``."""
    digest = hashlib.blake2b(
        f"{seed}|{token}|{attempt}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic seeded jitter.

    Parameters
    ----------
    max_retries:
        Retries *after* the first attempt (``1`` = the coordinator's
        historical one-reconnect-then-fail behaviour).
    base_delay:
        Backoff before the first retry, in seconds; retry ``i`` backs
        off ``base_delay * multiplier**i`` capped at ``max_delay``.
    multiplier, max_delay:
        The exponential growth factor and its cap.
    jitter:
        Fraction of each delay randomised away: the delay for retry
        ``i`` is scaled by ``1 - jitter * u`` where ``u`` is the
        deterministic unit draw for ``(seed, token, i)``.  ``0``
        disables jitter entirely.
    seed:
        Jitter seed.  Two policies with the same seed produce identical
        schedules for the same token — the chaos suite depends on it.
    budget:
        Per-request retry budget: a cap on *cumulative* backoff sleep,
        in seconds.  The schedule is truncated at the first delay that
        would push the running total past the budget, so a request can
        never spend longer backing off than the budget allows.
    """

    max_retries: int = 1
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.0
    seed: int = 0
    budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.budget is not None and self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")

    def schedule(self, token: str = "") -> Tuple[float, ...]:
        """The full backoff schedule for one request, deterministically.

        Element ``i`` is the sleep before retry ``i``; the tuple has at
        most ``max_retries`` elements and its sum never exceeds
        ``budget`` (when one is set).
        """
        delays = []
        total = 0.0
        for attempt in range(self.max_retries):
            delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
            if self.jitter:
                delay *= 1.0 - self.jitter * _unit_jitter(self.seed, token, attempt)
            if self.budget is not None and total + delay > self.budget:
                break
            total += delay
            delays.append(delay)
        return tuple(delays)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Closed / open / half-open circuit breaker with an injectable clock.

    * **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open (any success resets the count).
    * **open** — calls are refused outright until ``reset_timeout``
      seconds have elapsed on the injected clock.
    * **half-open** — after the timeout one probe call is admitted; its
      success closes the breaker, its failure re-opens it (and restarts
      the timeout).

    Thread-safe: the coordinator's scatter pool calls ``allow`` /
    ``record_*`` from multiple worker threads.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {reset_timeout}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open if the timeout passed."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half_open"
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?

        In half-open state only one probe is admitted: ``allow`` flips
        an internal latch, so concurrent callers see ``False`` until the
        probe reports back via ``record_success``/``record_failure``.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half_open" and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probing = False
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state == "half_open":
                self._probing = False
                self._state = "open"
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._clock()

    def snapshot(self) -> dict:
        """State for the ops surface (the coordinator's ``status`` reply)."""
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
            }


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
@dataclass
class Deadline:
    """An absolute deadline on a monotonic clock.

    Constructed from a *relative* budget (what travels on the wire as
    ``deadline_ms``) at the moment of receipt; ``remaining()`` shrinks
    as the clock advances, and hop N+1's socket timeout is derived from
    hop N's remaining budget — a slow shard can no longer pin a full
    30 s default timeout per hop.
    """

    seconds: float
    clock: Callable[[], float] = time.monotonic
    expires_at: float = field(init=False)

    def __post_init__(self) -> None:
        self.expires_at = self.clock() + float(self.seconds)

    @classmethod
    def from_ms(
        cls, deadline_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(float(deadline_ms) / 1000.0, clock)

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.expires_at - self.clock())

    def remaining_ms(self) -> int:
        """Remaining budget as whole milliseconds (floor), for the wire."""
        return int(self.remaining() * 1000.0)

    @property
    def expired(self) -> bool:
        return self.clock() >= self.expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired:
            raise DeadlineExceeded(
                f"{what} deadline of {self.seconds:.3f}s exceeded"
            )


#: The deadline governing the request currently being executed, if any.
#: Set by the server perimeter before dispatch; read by the shard
#: coordinator to bound its fan-out.
DEADLINE_VAR: contextvars.ContextVar[Optional[Deadline]] = contextvars.ContextVar(
    "repro_request_deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The deadline of the request being executed, or ``None``."""
    return DEADLINE_VAR.get()


@contextlib.contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[None]:
    """Set the ambient deadline for the duration of a ``with`` block."""
    token = DEADLINE_VAR.set(deadline)
    try:
        yield
    finally:
        DEADLINE_VAR.reset(token)


def run_with_deadline(fn: Callable, deadline: Optional[Deadline], /, *args):
    """Call ``fn(*args)`` with the ambient deadline set.

    The dispatch pool's threads do not inherit the event loop's context,
    so the server hands the deadline across the executor boundary by
    submitting ``run_with_deadline(engine.execute, deadline, request)``
    instead of ``engine.execute`` directly.
    """
    with deadline_scope(deadline):
        return fn(*args)
