"""Core of the reproduction: pseudorandom sketches (Mishra & Sandler 2006).

The module layout mirrors the paper:

* :mod:`repro.core.params` — the bias ``p`` and every derived constant;
* :mod:`repro.core.prf` — the public p-biased pseudorandom function ``H``;
* :mod:`repro.core.sketch` — Algorithm 1 (user-side sketching);
* :mod:`repro.core.estimator` — Algorithm 2 (aggregator-side queries);
* :mod:`repro.core.combine` — Appendix F (union-of-subsets queries);
* :mod:`repro.core.partition` — contiguous user-range sharding helpers;
* :mod:`repro.core.exact` — exact publish-probability analysis (Lemma 3.3);
* :mod:`repro.core.accountant` — multi-sketch budgets (Corollary 3.4).
"""

from .accountant import (
    BudgetExceeded,
    PrivacyAccountant,
    RelaxedPrivacyAccountant,
    ReleaseRecord,
)
from .combine import (
    CombinedEstimate,
    combine_mixed_bits,
    combine_aligned_bits,
    combine_from_weight_counts,
    combine_sketch_groups,
    combine_virtual_bits,
    condition_number,
    mixed_perturbation_matrix,
    perturbation_matrix,
    solve_weight_counts,
    transition_probability,
    weight_histogram,
)
from .partition import (
    merge_bounds,
    merge_columns,
    range_bounds,
    split_bounds,
    split_columns_at,
    split_columns_by_user_range,
    user_universe,
)
from .estimator import QueryEstimate, SketchEstimator
from .functional import FunctionEstimator, FunctionSketcher, ProfileFunction
from .exact import (
    PublishDistribution,
    average_publish_probability,
    consider_probability,
    exact_failure_probability,
    publish_probability,
    worst_case_ratio,
)
from .params import PrivacyParams, epsilon_for_p, p_for_epsilon
from .prf import (
    BiasedFunction,
    BiasedPRF,
    CounterPRF,
    TrueRandomOracle,
    encode_input,
    prf_from_spec,
)
from .sketch import CollectionCoins, Sketch, SketchFailure, Sketcher, UserCoins

__all__ = [
    "BiasedFunction",
    "BiasedPRF",
    "BudgetExceeded",
    "CollectionCoins",
    "CombinedEstimate",
    "CounterPRF",
    "FunctionEstimator",
    "FunctionSketcher",
    "PrivacyAccountant",
    "ProfileFunction",
    "PrivacyParams",
    "PublishDistribution",
    "QueryEstimate",
    "RelaxedPrivacyAccountant",
    "ReleaseRecord",
    "Sketch",
    "SketchEstimator",
    "SketchFailure",
    "Sketcher",
    "TrueRandomOracle",
    "UserCoins",
    "average_publish_probability",
    "combine_mixed_bits",
    "combine_aligned_bits",
    "combine_from_weight_counts",
    "combine_sketch_groups",
    "combine_virtual_bits",
    "condition_number",
    "consider_probability",
    "encode_input",
    "epsilon_for_p",
    "exact_failure_probability",
    "merge_bounds",
    "merge_columns",
    "mixed_perturbation_matrix",
    "p_for_epsilon",
    "perturbation_matrix",
    "prf_from_spec",
    "publish_probability",
    "range_bounds",
    "solve_weight_counts",
    "split_bounds",
    "split_columns_at",
    "split_columns_by_user_range",
    "transition_probability",
    "user_universe",
    "weight_histogram",
    "worst_case_ratio",
]
