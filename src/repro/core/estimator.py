"""Algorithm 2 — answering conjunctive queries from collected sketches.

Given one sketch per user for a subset ``B``, the aggregator estimates the
fraction of users with ``d_B = v`` for *any* of the ``2**|B|`` candidate
values ``v``:

1. compute the fraction ``r~`` of users whose published key evaluates to 1
   at ``v``:  ``H(id, B, v, s) = 1``;
2. de-bias:  ``r' = (r~ - p) / (1 - 2p)``.

Lemma 3.2 gives ``E[r~] = (1-p) r + p (1-r)`` where ``r`` is the true
fraction, so ``r'`` is unbiased, and Lemma 4.1's Chernoff argument bounds the
deviation by ``O(sqrt(log(1/delta) / M))`` — *independent of* ``|B|``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .params import PrivacyParams
from .prf import BiasedFunction
from .sketch import Sketch

__all__ = ["QueryEstimate", "SketchEstimator"]


@dataclass(frozen=True)
class QueryEstimate:
    """Result of one conjunctive-query estimation.

    Attributes
    ----------
    fraction:
        The de-biased estimate ``r'`` of the fraction of users with
        ``d_B = v``.  May fall slightly outside ``[0, 1]`` due to noise
        unless clamping was requested.
    count:
        ``fraction * num_users`` — the estimated number of matching users.
    raw_fraction:
        The observed biased fraction ``r~`` before de-biasing.
    num_users:
        Number of sketches that contributed.
    half_width:
        Half-width of the two-sided ``1 - delta`` confidence interval implied
        by the Hoeffding/Chernoff bound of Lemma 4.1.
    delta:
        Confidence parameter the half-width was computed for.
    """

    fraction: float
    count: float
    raw_fraction: float
    num_users: int
    half_width: float
    delta: float

    @property
    def interval(self) -> tuple[float, float]:
        """The ``1 - delta`` confidence interval for the true fraction."""
        return (self.fraction - self.half_width, self.fraction + self.half_width)

    def covers(self, true_fraction: float) -> bool:
        """Whether the confidence interval contains ``true_fraction``."""
        low, high = self.interval
        return low <= true_fraction <= high


class SketchEstimator:
    """Aggregator-side estimator implementing Algorithm 2.

    Parameters
    ----------
    params:
        Privacy parameters; ``p`` must match the bias of ``prf``.
    prf:
        The public p-biased function (the same instance, or one built from
        the same global key, that users sketched against).
    clamp:
        If True (default), clip de-biased fractions into ``[0, 1]``.  The
        raw estimator is unbiased but can exit the simplex at small ``M``;
        clamping trades a tiny bias for never reporting an impossible
        answer.  Benchmarks that verify unbiasedness disable it.
    """

    def __init__(self, params: PrivacyParams, prf: BiasedFunction, clamp: bool = True) -> None:
        if abs(prf.p - params.p) > 1e-12:
            raise ValueError(
                f"PRF bias {prf.p} does not match privacy parameter p={params.p}"
            )
        self.params = params
        self.prf = prf
        self.clamp = clamp

    # ------------------------------------------------------------------
    # Core estimation
    # ------------------------------------------------------------------
    def evaluations(self, sketches: Sequence[Sketch], value: Sequence[int]) -> np.ndarray:
        """Per-user virtual bits ``H(id, B, v, s)`` for a candidate value.

        These are exactly the "perturbed virtual bits" of Appendix F: a
        p-perturbed indicator of ``d_B = v`` for each user.  All sketches
        must cover the same subset ``B``.
        """
        if not sketches:
            raise ValueError("cannot estimate from an empty sketch collection")
        subset = sketches[0].subset
        value_t = tuple(int(bit) for bit in value)
        if len(value_t) != len(subset):
            raise ValueError(
                f"value length {len(value_t)} does not match subset size {len(subset)}"
            )
        for sketch in sketches:
            if sketch.subset != subset:
                raise ValueError(
                    f"mixed subsets in sketch collection: {sketch.subset} vs {subset}"
                )
        return self.prf.evaluate_many(
            (s.user_id for s in sketches), subset, value_t, (s.key for s in sketches)
        )

    def evaluations_block(
        self, sketches: Sequence[Sketch], values: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """``(M, V)`` matrix of virtual bits, one column per candidate value.

        The batched form of :meth:`evaluations`: every candidate of a
        histogram / full-marginal / plan-group query in one PRF block call.
        Column ``j`` is bitwise identical to ``evaluations(sketches,
        values[j])``.
        """
        if not sketches:
            raise ValueError("cannot estimate from an empty sketch collection")
        subset = sketches[0].subset
        value_ts = [tuple(int(bit) for bit in value) for value in values]
        for value_t in value_ts:
            if len(value_t) != len(subset):
                raise ValueError(
                    f"value length {len(value_t)} does not match subset size {len(subset)}"
                )
        for sketch in sketches:
            if sketch.subset != subset:
                raise ValueError(
                    f"mixed subsets in sketch collection: {sketch.subset} vs {subset}"
                )
        return self.prf.evaluate_block(
            [s.user_id for s in sketches], subset, value_ts, [s.key for s in sketches]
        )

    def evaluations_block_columns(
        self,
        subset: Sequence[int],
        user_ids: Sequence[str],
        keys: Sequence[int],
        values: Sequence[Sequence[int]],
    ) -> np.ndarray:
        """Column-speaking :meth:`evaluations_block`: aligned id/key arrays
        in, the same ``(M, V)`` virtual-bit matrix out.

        The store-format-v2 fast path: a columnar
        :class:`~repro.server.collector.SketchStore` hands its arrays here
        directly, so the aggregator's hot loop never materialises
        per-:class:`Sketch` objects at all.  Bitwise identical to
        :meth:`evaluations_block` over the corresponding sketches.
        """
        if len(user_ids) == 0:
            raise ValueError("cannot estimate from an empty sketch collection")
        subset_t = tuple(int(i) for i in subset)
        value_ts = [tuple(int(bit) for bit in value) for value in values]
        for value_t in value_ts:
            if len(value_t) != len(subset_t):
                raise ValueError(
                    f"value length {len(value_t)} does not match subset size {len(subset_t)}"
                )
        return self.prf.evaluate_block(user_ids, subset_t, value_ts, keys)

    def estimate_many(
        self,
        sketches: Sequence[Sketch],
        values: Sequence[Sequence[int]],
        delta: float = 0.05,
    ) -> list[QueryEstimate]:
        """One :meth:`estimate` per candidate value from a single block call.

        Produces exactly the same floats as calling :meth:`estimate` per
        value (the column means of an int8 matrix are exact in float64),
        at a fraction of the hashing cost.
        """
        block = self.evaluations_block(sketches, values)
        return [
            self.estimate_from_bits(block[:, j], delta=delta)
            for j in range(block.shape[1])
        ]

    def estimate(
        self,
        sketches: Sequence[Sketch],
        value: Sequence[int],
        delta: float = 0.05,
    ) -> QueryEstimate:
        """Estimate the fraction of users with ``d_B = value`` (Algorithm 2)."""
        bits = self.evaluations(sketches, value)
        return self.estimate_from_bits(bits, delta=delta)

    def estimate_from_bits(self, bits: np.ndarray, delta: float = 0.05) -> QueryEstimate:
        """De-bias a vector of p-perturbed indicator bits.

        Exposed separately because Appendix E/F pipelines manufacture their
        own virtual bits (XOR combinations, multi-subset indicators) and
        then need exactly this de-biasing step, possibly with a different
        effective bias — see :meth:`debias_fraction`.
        """
        num_users = int(bits.size)
        if num_users == 0:
            raise ValueError("cannot estimate from zero users")
        raw = float(np.mean(bits))
        fraction = self._debias(raw, self.params.p)
        if self.clamp:
            fraction = min(1.0, max(0.0, fraction))
        half_width = self.half_width(num_users, delta)
        return QueryEstimate(
            fraction=fraction,
            count=fraction * num_users,
            raw_fraction=raw,
            num_users=num_users,
            half_width=half_width,
            delta=delta,
        )

    def estimate_from_counts(
        self, bit_sum: int, num_users: int, delta: float = 0.05
    ) -> QueryEstimate:
        """:meth:`estimate_from_bits` from the sufficient statistic ``(sum, M)``.

        The scatter-gather reduction path: a 0/1 column's mean is
        ``bit_sum / num_users`` computed in float64, and every partial
        integer sum is exactly representable, so a coordinator that adds
        per-shard integer bit sums and calls this reproduces the
        single-store estimate bit for bit (``np.mean`` over int8 bits
        accumulates in float64 and performs the same correctly-rounded
        final division).
        """
        num_users = int(num_users)
        if num_users == 0:
            raise ValueError("cannot estimate from zero users")
        raw = float(int(bit_sum)) / num_users
        fraction = self._debias(raw, self.params.p)
        if self.clamp:
            fraction = min(1.0, max(0.0, fraction))
        half_width = self.half_width(num_users, delta)
        return QueryEstimate(
            fraction=fraction,
            count=fraction * num_users,
            raw_fraction=raw,
            num_users=num_users,
            half_width=half_width,
            delta=delta,
        )

    def debias_fraction(self, raw_fraction: float, bias: float | None = None) -> float:
        """Invert ``E[r~] = (1-p) r + p (1-r)`` for an arbitrary bias.

        Appendix E's XOR virtual bits are ``2p(1-p)``-perturbed rather than
        ``p``-perturbed; passing that effective bias here reuses the same
        inversion.
        """
        p = self.params.p if bias is None else bias
        return self._debias(raw_fraction, p)

    @staticmethod
    def _debias(raw_fraction: float, p: float) -> float:
        denominator = 1.0 - 2.0 * p
        if abs(denominator) < 1e-12:
            raise ValueError("p = 1/2 carries no signal; cannot de-bias")
        return (raw_fraction - p) / denominator

    # ------------------------------------------------------------------
    # Confidence intervals (Lemma 4.1)
    # ------------------------------------------------------------------
    def half_width(self, num_users: int, delta: float = 0.05) -> float:
        """Two-sided ``1 - delta`` half width from the Lemma 4.1 tail.

        Solving ``2 exp(-eps^2 (1-2p)^2 M / 4) = delta`` for ``eps``.  The
        paper's one-sided statement omits the factor 2; we use the two-sided
        version since estimates deviate in either direction.
        """
        if num_users < 1:
            raise ValueError(f"num_users must be >= 1, got {num_users}")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        return 2.0 * math.sqrt(math.log(2.0 / delta) / num_users) / self.params.debias_denominator

    def users_needed(self, error: float, delta: float = 0.05) -> int:
        """Smallest ``M`` for which the half width is at most ``error``.

        Useful for sizing deployments: how many users must publish before a
        conjunctive query is accurate to ``error`` with confidence
        ``1 - delta``.
        """
        if error <= 0:
            raise ValueError(f"error must be positive, got {error}")
        m = 4.0 * math.log(2.0 / delta) / (error * self.params.debias_denominator) ** 2
        return int(math.ceil(m))
