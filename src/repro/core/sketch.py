"""Algorithm 1 — the sketching algorithm.

A *sketch* of an attribute subset ``B`` of a user's profile ``d`` is a short
key ``s`` into the public p-biased function ``H`` chosen by rejection
sampling (Algorithm 1 of the paper):

1. choose ``s`` uniformly at random *without replacement* from the
   ``L = 2**length`` possible keys;
2. if ``H(id, B, d_B, s) = 1`` publish ``s`` and stop;
3. otherwise publish anyway with probability ``r = (p/(1-p))**2``, else
   return to step 1;
4. if all keys are exhausted, report failure.

The published key is *skewed* so that ``H(id, B, d_B, s) = 1`` with
probability ``1 - p`` (instead of ``p`` for a uniform key) while
``H(id, B, v, s) = 1`` with probability exactly ``p`` for every other
candidate value ``v`` (Lemma 3.2).  That two-sided property is all the
aggregator needs, and the rejection constant ``r`` is tuned so that the
distribution over published keys is within ``((1-p)/p)**4`` of uniform for
*any* profile (Lemma 3.3) — the privacy guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .params import PrivacyParams
from .prf import BiasedFunction

__all__ = ["Sketch", "SketchFailure", "Sketcher"]


class SketchFailure(RuntimeError):
    """Raised when Algorithm 1 exhausts every key without publishing.

    Lemma 3.1 shows the probability of this event is below ``tau`` for all
    ``M`` users once the sketch length reaches
    ``ceil(log2(log(tau/M)/log(1-p^2)))`` bits, so with the recommended
    length this exception is effectively unreachable in practice.
    """


@dataclass(frozen=True)
class Sketch:
    """A published sketch: everything the outside world sees.

    Attributes
    ----------
    user_id:
        The public identifier of the user (contains no private data).
    subset:
        The ordered tuple of profile bit positions ``B`` this sketch covers.
    key:
        The published key ``s`` — an integer in ``[0, 2**num_bits)``.
    num_bits:
        The sketch length ``l`` in bits; the key space has ``2**l`` keys.
    iterations:
        How many keys Algorithm 1 considered before publishing.  This is
        *not* part of the published record (revealing it would leak nothing
        either, but the paper publishes only ``s``); it is retained for the
        running-time experiments (E2).
    """

    user_id: str
    subset: Tuple[int, ...]
    key: int
    num_bits: int
    iterations: int

    def __post_init__(self) -> None:
        if not 0 <= self.key < (1 << self.num_bits):
            raise ValueError(
                f"key {self.key} out of range for a {self.num_bits}-bit sketch"
            )

    @classmethod
    def _trusted(
        cls,
        user_id: str,
        subset: Tuple[int, ...],
        key: int,
        num_bits: int,
        iterations: int,
    ) -> "Sketch":
        """Construct without per-instance validation.

        Bulk loaders (the columnar store format) validate whole key
        columns vectorially before materialising any objects; repeating
        the range check per sketch would be the dominant cost of a
        50k-row load.  Callers must have established
        ``0 <= key < 2**num_bits`` already.
        """
        sketch = object.__new__(cls)
        # One attribute-dict swap instead of five frozen-dataclass
        # object.__setattr__ calls plus __post_init__.
        object.__setattr__(
            sketch,
            "__dict__",
            {
                "user_id": user_id,
                "subset": subset,
                "key": key,
                "num_bits": num_bits,
                "iterations": iterations,
            },
        )
        return sketch

    @property
    def size_bits(self) -> int:
        """Published size in bits — the paper's headline ``ceil(log log M)``."""
        return self.num_bits

    def evaluate(self, prf: BiasedFunction, value: Sequence[int]) -> int:
        """Evaluate ``H(id, B, v, s)`` at a candidate value ``v``.

        This is the aggregator-side primitive: a 1 is (noisy) evidence that
        the user's true ``d_B`` equals ``v``.
        """
        return prf.evaluate(self.user_id, self.subset, tuple(value), self.key)


class Sketcher:
    """User-side implementation of Algorithm 1.

    Parameters
    ----------
    params:
        The privacy parameters (bias ``p``).
    prf:
        The public p-biased function ``H``.  Its bias must match ``params.p``.
    sketch_bits:
        Length of the sketch in bits.  Use
        :meth:`PrivacyParams.sketch_length` to size it from the expected
        number of users and failure budget, or rely on the paper's remark
        that 10 bits suffice for any practical deployment when ``p > 1/4``.
    rng:
        Source of the user's *private* coins (key sampling order and the
        accept coin).  Distinct users should use independent generators.
    with_replacement:
        Ablation switch (off by default, matching the paper): sample keys
        *with* replacement instead of Algorithm 1's without-replacement
        sampling.  The published key keeps the exact Lemma 3.2 biases
        (the per-consideration stop/accept law is unchanged) and the same
        asymptotic privacy ratio, but the loop no longer provably
        terminates within ``2**sketch_bits`` draws — a ``max_iterations``
        cap converts the tail into an explicit failure.  Benchmarked in
        E2b.
    max_iterations:
        Draw cap for the with-replacement variant.  Defaults to enough
        draws for a ``1e-12`` failure probability.  Ignored without
        replacement (the key space itself is the cap).
    block_size:
        Candidate keys evaluated per PRF chunk call when the function is
        :attr:`~repro.core.prf.BiasedFunction.stateless` (the deployed
        :class:`~repro.core.prf.BiasedPRF`).  Defaults to a small multiple
        of the expected iteration count, so the typical run finishes in
        one :meth:`~repro.core.prf.BiasedFunction.evaluate_keys` chunk.
        Stateful functions (the :class:`~repro.core.prf.TrueRandomOracle`
        test double) always fall back to one ``evaluate`` per candidate,
        preserving the oracle's lazily-sampled draw order; chunking would
        speculatively evaluate keys past the stopping point, which for a
        stateless function costs nothing but bounded wasted hashing.  The
        published sketch is identical for every ``block_size``.
    """

    def __init__(
        self,
        params: PrivacyParams,
        prf: BiasedFunction,
        sketch_bits: int = 10,
        rng: np.random.Generator | None = None,
        with_replacement: bool = False,
        max_iterations: int | None = None,
        block_size: int | None = None,
    ) -> None:
        if abs(prf.p - params.p) > 1e-12:
            raise ValueError(
                f"PRF bias {prf.p} does not match privacy parameter p={params.p}"
            )
        if sketch_bits < 1:
            raise ValueError(f"sketch_bits must be >= 1, got {sketch_bits}")
        if sketch_bits > 30:
            raise ValueError(
                f"sketch_bits={sketch_bits} would enumerate 2**{sketch_bits} keys; "
                "Lemma 3.1 shows ~10 bits suffice for any realistic deployment"
            )
        self.params = params
        self.prf = prf
        self.sketch_bits = sketch_bits
        self.with_replacement = with_replacement
        if max_iterations is not None and max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if max_iterations is None and with_replacement:
            # Enough draws for failure probability <= 1e-12 conditioned on
            # ANY evaluation pattern: even when every key evaluates to 0,
            # each draw still stops via the accept coin with probability r.
            stop = params.rejection_probability
            max_iterations = math.ceil(math.log(1e-12) / math.log(1.0 - stop))
        self.max_iterations = max_iterations
        self._rng = rng if rng is not None else np.random.default_rng()
        if block_size is None:
            block_size = max(4, math.ceil(2.0 * params.expected_iterations))
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = min(block_size, 1 << sketch_bits)

    @property
    def num_keys(self) -> int:
        """Size ``L = 2**l`` of the key space."""
        return 1 << self.sketch_bits

    @property
    def rng(self) -> np.random.Generator:
        """The sketcher's default source of private coins."""
        return self._rng

    def sketch(
        self,
        user_id: str,
        profile: Sequence[int],
        subset: Sequence[int],
        rng: np.random.Generator | None = None,
    ) -> Sketch:
        """Run Algorithm 1: publish a sketch of ``profile`` restricted to ``subset``.

        Parameters
        ----------
        user_id:
            Public identifier of the user.
        profile:
            The user's full private bit vector ``d`` (0/1 entries).
        subset:
            Bit positions ``B`` to sketch, indices into ``profile``.
        rng:
            Override for this run's private coins.  The sharded collector
            passes a per-user generator derived from ``(seed, user index)``
            so the same user draws the same coins on every worker layout;
            ``None`` uses the sketcher's own generator.

        Returns
        -------
        Sketch
            The published record.

        Raises
        ------
        SketchFailure
            If every key in the space was considered and rejected
            (probability below ``(1 - p^2)**(2**sketch_bits)``, see
            Lemma 3.1).
        IndexError
            If ``subset`` indexes outside the profile.
        """
        rng = rng if rng is not None else self._rng
        subset_t = tuple(int(i) for i in subset)
        true_value = self._project(profile, subset_t)
        accept_prob = self.params.rejection_probability

        if self.with_replacement:
            # Ablation variant: fresh uniform draw every iteration.
            for iteration in range(1, self.max_iterations + 1):
                key = int(rng.integers(0, self.num_keys))
                if self.prf.evaluate(user_id, subset_t, true_value, key) == 1:
                    return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
                if rng.random() < accept_prob:
                    return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
            raise SketchFailure(
                f"with-replacement draw cap of {self.max_iterations} hit for "
                f"user {user_id!r}"
            )

        # Sampling without replacement over the full key space, in a random
        # order chosen by the user's private coins.  A permutation is the
        # direct transcription of "choose s uniformly at random without
        # replacement" and costs O(L) = O(2**l) which is tiny (l <= 30).
        order = rng.permutation(self.num_keys)

        if self.prf.stateless and self.block_size > 1:
            # Chunked loop: evaluate a run of candidate keys in one
            # evaluate_keys call, then replay Algorithm 1's decisions over
            # the precomputed bits.  The user's coin stream is untouched
            # (the permutation was already drawn; accept coins fire only on
            # misses, in order, stopping where the scalar loop stops), so
            # the published sketch — key, length, iteration count — is
            # identical; keys past the stopping point inside the final
            # chunk are speculative hashes a stateless PRF can discard.
            iteration = 0
            for start in range(0, self.num_keys, self.block_size):
                chunk = [int(k) for k in order[start : start + self.block_size]]
                bits = self.prf.evaluate_keys(user_id, subset_t, true_value, chunk)
                for key, bit in zip(chunk, bits):
                    iteration += 1
                    if bit == 1:
                        return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
                    if rng.random() < accept_prob:
                        return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
            raise SketchFailure(
                f"all {self.num_keys} keys exhausted for user {user_id!r}; "
                f"this event has probability < {self.params.failure_probability(self.sketch_bits):.3e}"
            )

        for iteration, key in enumerate(order, start=1):
            key = int(key)
            if self.prf.evaluate(user_id, subset_t, true_value, key) == 1:
                return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
            if rng.random() < accept_prob:
                return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
        raise SketchFailure(
            f"all {self.num_keys} keys exhausted for user {user_id!r}; "
            f"this event has probability < {self.params.failure_probability(self.sketch_bits):.3e}"
        )

    @staticmethod
    def _project(profile: Sequence[int], subset: Tuple[int, ...]) -> Tuple[int, ...]:
        """Return ``d_B``: the sub-vector of ``profile`` induced by ``subset``."""
        value = []
        for position in subset:
            bit = int(profile[position])
            if bit not in (0, 1):
                raise ValueError(f"profile bit at position {position} is {bit}, not 0/1")
            value.append(bit)
        return tuple(value)
