"""Algorithm 1 — the sketching algorithm.

A *sketch* of an attribute subset ``B`` of a user's profile ``d`` is a short
key ``s`` into the public p-biased function ``H`` chosen by rejection
sampling (Algorithm 1 of the paper):

1. choose ``s`` uniformly at random *without replacement* from the
   ``L = 2**length`` possible keys;
2. if ``H(id, B, d_B, s) = 1`` publish ``s`` and stop;
3. otherwise publish anyway with probability ``r = (p/(1-p))**2``, else
   return to step 1;
4. if all keys are exhausted, report failure.

The published key is *skewed* so that ``H(id, B, d_B, s) = 1`` with
probability ``1 - p`` (instead of ``p`` for a uniform key) while
``H(id, B, v, s) = 1`` with probability exactly ``p`` for every other
candidate value ``v`` (Lemma 3.2).  That two-sided property is all the
aggregator needs, and the rejection constant ``r`` is tuned so that the
distribution over published keys is within ``((1-p)/p)**4`` of uniform for
*any* profile (Lemma 3.3) — the privacy guarantee.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .params import PrivacyParams
from .philox import philox4x64_rows, philox4x64_zero_tail, uniform_doubles
from .prf import BiasedFunction

__all__ = [
    "CollectionCoins",
    "Sketch",
    "SketchFailure",
    "Sketcher",
    "UserCoins",
]


class CollectionCoins:
    """Counter-based private coins for deterministic (sharded) collection.

    The sharded collector needs each user's coins to be a pure function of
    ``(seed, global user index, subset run)`` — that is what makes the
    published store bitwise identical for every worker count and every
    pool schedule.  Per-user ``numpy`` generators satisfy that contract
    but cost ~20us per user just to *construct and permute*, which caps
    collection far below the hashing cost.  This scheme keeps the purity
    and drops the per-user state: one BLAKE2b call per *run* derives a
    128-bit Philox key, and every coin of every user then lives at a fixed
    counter — ``(position, user index)`` — of that keyed Philox4x64-10
    stream (see :mod:`repro.core.philox`), so a whole chunk of users draws
    all its coins in one vectorised pass.

    Each *position* ``k`` of a user's stream carries one candidate draw:
    an unsigned key word (mapped to a candidate sketch key by taking its
    top ``sketch_bits`` bits — uniform over the key space) and one accept
    coin (mapped to a double in ``[0, 1)``).  Algorithm 1's
    without-replacement draw is realised by *skipping repeats*: a
    candidate equal to an earlier one in the same stream is ignored, which
    conditions the i.i.d. draws on distinctness — exactly the law of
    sampling without replacement — while keeping every position's words
    independent of chunking, so the published sketch does not depend on
    ``block_size`` or on how many users were processed together.
    """

    _DOMAIN = b"repro-collect-coins-v1"

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._run_keys: dict[int, Tuple[int, int]] = {}

    def run_key(self, run_index: int) -> Tuple[int, int]:
        """The 128-bit Philox key for one subset run, as two uint64 words."""
        run_index = int(run_index)
        cached = self._run_keys.get(run_index)
        if cached is None:
            digest = hashlib.blake2b(
                self._DOMAIN
                + b"|seed|"
                + str(self.seed).encode("ascii")
                + b"|run|"
                + str(run_index).encode("ascii"),
                digest_size=16,
            ).digest()
            cached = (
                int.from_bytes(digest[:8], "little"),
                int.from_bytes(digest[8:], "little"),
            )
            self._run_keys[run_index] = cached
        return cached

    def user(self, user_index: int, run_index: int) -> "UserCoins":
        """The scalar coin stream of one ``(user, run)`` pair."""
        return UserCoins(self, int(user_index), int(run_index))

    def draw_grid(
        self,
        user_indices: np.ndarray,
        run_index: int,
        num_positions: int,
        start_position: int = 0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(U, P)`` candidate words and accept coins for a user chunk.

        Row ``u`` holds positions ``start .. start+P-1`` of user
        ``user_indices[u]``'s stream — identical to what
        :class:`UserCoins` yields scalar-wise, drawn in one vectorised
        Philox pass.  ``start_position`` must be even (two positions per
        Philox block); ``P`` is rounded up to the next even number.
        """
        if start_position % 2:
            raise ValueError(f"start_position must be even, got {start_position}")
        start_block = start_position // 2
        num_blocks = (int(num_positions) + 1) // 2
        k0, k1 = self.run_key(run_index)
        indices = np.ascontiguousarray(user_indices, dtype=np.uint64)
        words = philox4x64_rows(
            np.arange(start_block, start_block + num_blocks, dtype=np.uint64)[None, :],
            indices[:, None],
            np.uint64(k0),
            np.uint64(k1),
        )
        # Block j carries positions 2j (words 0, 1) and 2j+1 (words 2, 3):
        # even lanes are candidate words, odd lanes accept-coin words.
        num_users = indices.size
        lattice = np.empty((num_users, num_blocks, 4), dtype=np.uint64)
        for lane, word in enumerate(words):
            lattice[:, :, lane] = word
        flat = lattice.reshape(num_users, num_blocks * 2, 2)
        return flat[:, :, 0], uniform_doubles(flat[:, :, 1])


class UserCoins:
    """Scalar view of one user's :class:`CollectionCoins` stream."""

    def __init__(self, coins: CollectionCoins, user_index: int, run_index: int) -> None:
        self.coins = coins
        self.user_index = user_index
        self.run_index = run_index

    def draw(self, start_position: int, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate words and accept coins for positions ``start .. start+count-1``.

        Bitwise identical to the corresponding columns of
        :meth:`CollectionCoins.draw_grid` — chunk boundaries never change
        a coin.
        """
        start_block = start_position // 2
        end_block = (start_position + count + 1) // 2
        k0, k1 = self.coins.run_key(self.run_index)
        blocks = np.arange(start_block, end_block, dtype=np.uint64)
        words = philox4x64_zero_tail(
            blocks,
            np.full(blocks.size, self.user_index, dtype=np.uint64),
            np.uint64(k0),
            np.uint64(k1),
        )
        lattice = np.stack(words, axis=-1).reshape(blocks.size * 2, 2)
        offset = start_position - 2 * start_block
        span = lattice[offset : offset + count]
        return span[:, 0], uniform_doubles(span[:, 1])


class SketchFailure(RuntimeError):
    """Raised when Algorithm 1 exhausts every key without publishing.

    Lemma 3.1 shows the probability of this event is below ``tau`` for all
    ``M`` users once the sketch length reaches
    ``ceil(log2(log(tau/M)/log(1-p^2)))`` bits, so with the recommended
    length this exception is effectively unreachable in practice.
    """


@dataclass(frozen=True)
class Sketch:
    """A published sketch: everything the outside world sees.

    Attributes
    ----------
    user_id:
        The public identifier of the user (contains no private data).
    subset:
        The ordered tuple of profile bit positions ``B`` this sketch covers.
    key:
        The published key ``s`` — an integer in ``[0, 2**num_bits)``.
    num_bits:
        The sketch length ``l`` in bits; the key space has ``2**l`` keys.
    iterations:
        How many keys Algorithm 1 considered before publishing.  This is
        *not* part of the published record (revealing it would leak nothing
        either, but the paper publishes only ``s``); it is retained for the
        running-time experiments (E2).
    """

    user_id: str
    subset: Tuple[int, ...]
    key: int
    num_bits: int
    iterations: int

    def __post_init__(self) -> None:
        if not 0 <= self.key < (1 << self.num_bits):
            raise ValueError(
                f"key {self.key} out of range for a {self.num_bits}-bit sketch"
            )

    @classmethod
    def _trusted(
        cls,
        user_id: str,
        subset: Tuple[int, ...],
        key: int,
        num_bits: int,
        iterations: int,
    ) -> "Sketch":
        """Construct without per-instance validation.

        Bulk loaders (the columnar store format) validate whole key
        columns vectorially before materialising any objects; repeating
        the range check per sketch would be the dominant cost of a
        50k-row load.  Callers must have established
        ``0 <= key < 2**num_bits`` already.
        """
        sketch = object.__new__(cls)
        # One attribute-dict swap instead of five frozen-dataclass
        # object.__setattr__ calls plus __post_init__.
        object.__setattr__(
            sketch,
            "__dict__",
            {
                "user_id": user_id,
                "subset": subset,
                "key": key,
                "num_bits": num_bits,
                "iterations": iterations,
            },
        )
        return sketch

    @property
    def size_bits(self) -> int:
        """Published size in bits — the paper's headline ``ceil(log log M)``."""
        return self.num_bits

    def evaluate(self, prf: BiasedFunction, value: Sequence[int]) -> int:
        """Evaluate ``H(id, B, v, s)`` at a candidate value ``v``.

        This is the aggregator-side primitive: a 1 is (noisy) evidence that
        the user's true ``d_B`` equals ``v``.
        """
        return prf.evaluate(self.user_id, self.subset, tuple(value), self.key)


class Sketcher:
    """User-side implementation of Algorithm 1.

    Parameters
    ----------
    params:
        The privacy parameters (bias ``p``).
    prf:
        The public p-biased function ``H``.  Its bias must match ``params.p``.
    sketch_bits:
        Length of the sketch in bits.  Use
        :meth:`PrivacyParams.sketch_length` to size it from the expected
        number of users and failure budget, or rely on the paper's remark
        that 10 bits suffice for any practical deployment when ``p > 1/4``.
    rng:
        Source of the user's *private* coins (key sampling order and the
        accept coin).  Distinct users should use independent generators.
    with_replacement:
        Ablation switch (off by default, matching the paper): sample keys
        *with* replacement instead of Algorithm 1's without-replacement
        sampling.  The published key keeps the exact Lemma 3.2 biases
        (the per-consideration stop/accept law is unchanged) and the same
        asymptotic privacy ratio, but the loop no longer provably
        terminates within ``2**sketch_bits`` draws — a ``max_iterations``
        cap converts the tail into an explicit failure.  Benchmarked in
        E2b.
    max_iterations:
        Draw cap for the with-replacement variant.  Defaults to enough
        draws for a ``1e-12`` failure probability.  Ignored without
        replacement (the key space itself is the cap).
    block_size:
        Candidate keys evaluated per PRF chunk call when the function is
        :attr:`~repro.core.prf.BiasedFunction.stateless` (the deployed
        :class:`~repro.core.prf.BiasedPRF`).  Defaults to a small multiple
        of the expected iteration count, so the typical run finishes in
        one :meth:`~repro.core.prf.BiasedFunction.evaluate_keys` chunk.
        Stateful functions (the :class:`~repro.core.prf.TrueRandomOracle`
        test double) always fall back to one ``evaluate`` per candidate,
        preserving the oracle's lazily-sampled draw order; chunking would
        speculatively evaluate keys past the stopping point, which for a
        stateless function costs nothing but bounded wasted hashing.  The
        published sketch is identical for every ``block_size``.
    """

    def __init__(
        self,
        params: PrivacyParams,
        prf: BiasedFunction,
        sketch_bits: int = 10,
        rng: np.random.Generator | None = None,
        with_replacement: bool = False,
        max_iterations: int | None = None,
        block_size: int | None = None,
    ) -> None:
        if abs(prf.p - params.p) > 1e-12:
            raise ValueError(
                f"PRF bias {prf.p} does not match privacy parameter p={params.p}"
            )
        if sketch_bits < 1:
            raise ValueError(f"sketch_bits must be >= 1, got {sketch_bits}")
        if sketch_bits > 30:
            raise ValueError(
                f"sketch_bits={sketch_bits} would enumerate 2**{sketch_bits} keys; "
                "Lemma 3.1 shows ~10 bits suffice for any realistic deployment"
            )
        self.params = params
        self.prf = prf
        self.sketch_bits = sketch_bits
        self.with_replacement = with_replacement
        if max_iterations is not None and max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if max_iterations is None and with_replacement:
            # Enough draws for failure probability <= 1e-12 conditioned on
            # ANY evaluation pattern: even when every key evaluates to 0,
            # each draw still stops via the accept coin with probability r.
            stop = params.rejection_probability
            max_iterations = math.ceil(math.log(1e-12) / math.log(1.0 - stop))
        self.max_iterations = max_iterations
        self._rng = rng if rng is not None else np.random.default_rng()
        if block_size is None:
            block_size = max(4, math.ceil(2.0 * params.expected_iterations))
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = min(block_size, 1 << sketch_bits)

    @property
    def num_keys(self) -> int:
        """Size ``L = 2**l`` of the key space."""
        return 1 << self.sketch_bits

    @property
    def rng(self) -> np.random.Generator:
        """The sketcher's default source of private coins."""
        return self._rng

    def sketch(
        self,
        user_id: str,
        profile: Sequence[int],
        subset: Sequence[int],
        rng: np.random.Generator | None = None,
        coins: UserCoins | None = None,
    ) -> Sketch:
        """Run Algorithm 1: publish a sketch of ``profile`` restricted to ``subset``.

        Parameters
        ----------
        user_id:
            Public identifier of the user.
        profile:
            The user's full private bit vector ``d`` (0/1 entries).
        subset:
            Bit positions ``B`` to sketch, indices into ``profile``.
        rng:
            Override for this run's private coins; ``None`` uses the
            sketcher's own generator.  This is the classic sequential
            path: a uniform key permutation plus lazy accept coins.
        coins:
            Deterministic counter-based coins instead of a generator (see
            :class:`CollectionCoins`) — the scalar form of the schedule
            :meth:`sketch_many` vectorises, used by the sharded collector
            so every user's sketch is a pure function of ``(seed, global
            user index, run)``.  Mutually exclusive with ``rng``.

        Returns
        -------
        Sketch
            The published record.

        Raises
        ------
        SketchFailure
            If every key in the space was considered and rejected
            (probability below ``(1 - p^2)**(2**sketch_bits)``, see
            Lemma 3.1).
        IndexError
            If ``subset`` indexes outside the profile.
        """
        subset_t = tuple(int(i) for i in subset)
        true_value = self._project(profile, subset_t)
        if coins is not None:
            if rng is not None:
                raise ValueError("pass either rng or coins, not both")
            return self._sketch_with_coins(user_id, subset_t, true_value, coins)
        rng = rng if rng is not None else self._rng
        accept_prob = self.params.rejection_probability

        if self.with_replacement:
            # Ablation variant: fresh uniform draw every iteration.
            for iteration in range(1, self.max_iterations + 1):
                key = int(rng.integers(0, self.num_keys))
                if self.prf.evaluate(user_id, subset_t, true_value, key) == 1:
                    return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
                if rng.random() < accept_prob:
                    return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
            raise SketchFailure(
                f"with-replacement draw cap of {self.max_iterations} hit for "
                f"user {user_id!r}"
            )

        # Sampling without replacement over the full key space, in a random
        # order chosen by the user's private coins.  A permutation is the
        # direct transcription of "choose s uniformly at random without
        # replacement" and costs O(L) = O(2**l) which is tiny (l <= 30).
        order = rng.permutation(self.num_keys)

        if self.prf.stateless and self.block_size > 1:
            # Chunked loop: evaluate a run of candidate keys in one
            # evaluate_keys call, then replay Algorithm 1's decisions over
            # the precomputed bits.  The user's coin stream is untouched
            # (the permutation was already drawn; accept coins fire only on
            # misses, in order, stopping where the scalar loop stops), so
            # the published sketch — key, length, iteration count — is
            # identical; keys past the stopping point inside the final
            # chunk are speculative hashes a stateless PRF can discard.
            iteration = 0
            for start in range(0, self.num_keys, self.block_size):
                chunk = [int(k) for k in order[start : start + self.block_size]]
                bits = self.prf.evaluate_keys(user_id, subset_t, true_value, chunk)
                for key, bit in zip(chunk, bits):
                    iteration += 1
                    if bit == 1:
                        return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
                    if rng.random() < accept_prob:
                        return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
            raise SketchFailure(
                f"all {self.num_keys} keys exhausted for user {user_id!r}; "
                f"this event has probability < {self.params.failure_probability(self.sketch_bits):.3e}"
            )

        for iteration, key in enumerate(order, start=1):
            key = int(key)
            if self.prf.evaluate(user_id, subset_t, true_value, key) == 1:
                return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
            if rng.random() < accept_prob:
                return Sketch(user_id, subset_t, key, self.sketch_bits, iteration)
        raise SketchFailure(
            f"all {self.num_keys} keys exhausted for user {user_id!r}; "
            f"this event has probability < {self.params.failure_probability(self.sketch_bits):.3e}"
        )

    def _sketch_with_coins(
        self,
        user_id: str,
        subset_t: Tuple[int, ...],
        true_value: Tuple[int, ...],
        coins: UserCoins,
    ) -> Sketch:
        """Scalar reference of the deterministic coin schedule.

        Position ``k`` of the user's coin stream carries one candidate
        draw (key word + accept coin); a candidate already considered is
        skipped, which turns the i.i.d. stream into Algorithm 1's
        without-replacement sampling (see :class:`CollectionCoins`).
        Every decision depends only on the stream contents at its own
        position, so the published sketch is independent of chunk sizes —
        and bitwise identical to :meth:`sketch_many`, which vectorises
        exactly this loop and falls back here for stragglers.
        """
        accept_prob = self.params.rejection_probability
        key_shift = np.uint64(64 - self.sketch_bits)
        # Chunking only batches word generation — decisions are
        # position-local, so the published sketch is chunk-independent.
        chunk = min(max(2, self.block_size), 1024)
        seen: set = set()
        iteration = 0
        position = 0
        cap = self.max_iterations if self.with_replacement else None
        while True:
            key_words, accept_coins = coins.draw(position, chunk)
            candidates = (key_words >> key_shift).tolist()
            if self.prf.stateless:
                # A stateless PRF may be evaluated speculatively: the
                # whole chunk in one call, wasted hashes discarded.
                bits = self.prf.evaluate_keys(
                    user_id, subset_t, true_value, candidates
                )
            else:
                # A memoising function is evaluated lazily, one considered
                # candidate at a time — its sampled points stay exactly
                # the iterations Algorithm 1 performed.
                bits = None
            for offset, candidate in enumerate(candidates):
                if not self.with_replacement:
                    if candidate in seen:
                        continue
                    seen.add(candidate)
                iteration += 1
                bit = (
                    bits[offset]
                    if bits is not None
                    else self.prf.evaluate(user_id, subset_t, true_value, candidate)
                )
                if bit == 1 or accept_coins[offset] < accept_prob:
                    return Sketch(
                        user_id, subset_t, candidate, self.sketch_bits, iteration
                    )
                if cap is not None and iteration >= cap:
                    raise SketchFailure(
                        f"with-replacement draw cap of {cap} hit for "
                        f"user {user_id!r}"
                    )
            if not self.with_replacement and len(seen) == self.num_keys:
                raise SketchFailure(
                    f"all {self.num_keys} keys exhausted for user {user_id!r}; "
                    f"this event has probability < "
                    f"{self.params.failure_probability(self.sketch_bits):.3e}"
                )
            position += chunk

    def sketch_many(
        self,
        user_ids: Sequence[str],
        profile_rows: np.ndarray,
        subset: Sequence[int],
        coins: CollectionCoins,
        user_indices: Sequence[int],
        run_index: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run Algorithm 1 for a whole chunk of users at once.

        The collection hot path: one ``(users x candidate-keys)`` PRF
        block for the chunk
        (:meth:`~repro.core.prf.BiasedFunction.evaluate_grid`), one
        vectorised coin pass (:meth:`CollectionCoins.draw_grid`), and a
        vectorised first-acceptance scan (``argmax`` over the per-position
        stop events).  Only the rare stragglers that neither hit nor
        accept inside the evaluated block — about
        ``((1-p)(1-r))**block_size`` of users — replay the scalar
        schedule, which is bitwise identical by construction.

        Parameters
        ----------
        user_ids:
            Public identifiers, aligned with ``profile_rows``.
        profile_rows:
            ``(U, total_bits)`` 0/1 matrix of the users' private profiles.
        subset:
            Bit positions ``B`` to sketch.
        coins:
            The deterministic coin source shared by the whole collection.
        user_indices:
            Each user's *global* database index — the only per-user input
            to the coin stream, which is what makes any chunking of the
            users publish identical sketches.
        run_index:
            Position of ``subset`` in the publishing policy (distinct
            runs draw independent coins).

        Returns
        -------
        (keys, iterations):
            ``uint64`` published keys and ``int64`` iteration counts,
            aligned with ``user_ids``.  Bitwise identical to looping
            :meth:`sketch` with ``coins=coins.user(index, run_index)``.
        """
        subset_t = tuple(int(i) for i in subset)
        rows = np.asarray(profile_rows)
        if rows.ndim != 2 or rows.shape[0] != len(user_ids):
            raise ValueError(
                f"profile_rows must be (num_users, total_bits) aligned with "
                f"user_ids, got {rows.shape} for {len(user_ids)} users"
            )
        indices = np.asarray(user_indices, dtype=np.int64)
        if indices.size != len(user_ids):
            raise ValueError(
                f"user_indices ({indices.size}) must align with user_ids "
                f"({len(user_ids)})"
            )
        num_users = len(user_ids)
        keys_out = np.zeros(num_users, dtype=np.uint64)
        iterations_out = np.zeros(num_users, dtype=np.int64)
        if num_users == 0:
            return keys_out, iterations_out
        values = rows[:, list(subset_t)]
        if values.size and not np.isin(values, (0, 1)).all():
            bad = int(np.argmax(~np.isin(values, (0, 1)).all(axis=1)))
            raise ValueError(
                f"profile bits for user {user_ids[bad]!r} are not 0/1 on "
                f"subset {subset_t}"
            )

        if not self.prf.stateless:
            # A memoising function must sample points in scalar order —
            # speculative grid evaluation would perturb its draws.  The
            # scalar schedule is the same coins, user by user.
            for position in range(num_users):
                record = self.sketch(
                    str(user_ids[position]),
                    rows[position],
                    subset_t,
                    coins=coins.user(int(indices[position]), run_index),
                )
                keys_out[position] = record.key
                iterations_out[position] = record.iterations
            return keys_out, iterations_out

        # Vectorised rounds: the first covers `block_size` stream positions
        # for every user; each following round doubles the window and runs
        # only for the users still unstopped (a geometrically-shrinking
        # set), so the scalar fallback below is reached with probability
        # ~((1-p)(1-r))**position_cap per user — effectively never.
        key_shift = np.uint64(64 - self.sketch_bits)
        accept_prob = self.params.rejection_probability
        width = 2 * ((min(max(2, self.block_size), 64) + 1) // 2)
        if self.with_replacement:
            # The ablation variant keeps one vectorised round (the draw
            # cap and its SketchFailure semantics live in the scalar
            # schedule, which stragglers replay).
            position_cap = width
        else:
            position_cap = max(width, 4 * self.num_keys)
        active = np.arange(num_users)
        active_values = values
        active_user_ids = list(map(str, user_ids))
        active_indices = indices
        # Dup-skip state for the active users: all candidates drawn so
        # far (the without-replacement filter looks across rounds) and the
        # number of iterations already consumed.
        drawn: np.ndarray | None = None
        consumed = np.zeros(num_users, dtype=np.int64)
        start = 0
        while active.size and start + width <= position_cap:
            key_words, accept_coins = coins.draw_grid(
                active_indices, run_index, width, start_position=start
            )
            candidates = key_words >> key_shift
            bits = self.prf.evaluate_grid(
                active_user_ids, subset_t, active_values, candidates
            )
            stop = bits.astype(bool)
            np.logical_or(stop, accept_coins < accept_prob, out=stop)
            if self.with_replacement:
                valid = np.ones_like(stop)
                if self.max_iterations is not None and width > self.max_iterations:
                    # Positions past the draw cap must not publish.
                    stop[:, self.max_iterations:] = False
            else:
                # A candidate equal to an earlier one in the same stream
                # (this round or any previous) is a skipped repeat — it
                # neither stops nor counts an iteration.  A stable sort
                # clusters equal candidates in position order, so
                # everything equal to its sorted predecessor is a repeat.
                history = (
                    candidates
                    if drawn is None
                    else np.concatenate([drawn, candidates], axis=1)
                )
                order = np.argsort(history, axis=1, kind="stable")
                sorted_history = np.take_along_axis(history, order, axis=1)
                repeat_sorted = np.zeros(history.shape, dtype=bool)
                repeat_sorted[:, 1:] = sorted_history[:, 1:] == sorted_history[:, :-1]
                dup = np.zeros(history.shape, dtype=bool)
                np.put_along_axis(dup, order, repeat_sorted, axis=1)
                valid = ~dup[:, start:]
                stop &= valid
                drawn = history
            first = np.argmax(stop, axis=1)
            row_axis = np.arange(active.size)
            stopped = stop[row_axis, first]
            considered = np.cumsum(valid, axis=1)
            finished = active[stopped]
            keys_out[finished] = candidates[row_axis, first][stopped]
            iterations_out[finished] = (
                consumed[active] + considered[row_axis, first]
            )[stopped]
            remaining = ~stopped
            consumed[active] += considered[:, -1]
            active = active[remaining]
            if active.size:
                active_values = active_values[remaining]
                active_user_ids = [
                    uid for uid, keep in zip(active_user_ids, remaining) if keep
                ]
                active_indices = active_indices[remaining]
                if drawn is not None:
                    drawn = drawn[remaining]
            start += width
            width *= 2
        for position in active:
            # Scalar fallback (exhausted the vectorised position budget,
            # or the with-replacement round): replay the full schedule
            # from position 0 — the PRF is pure, so the replayed prefix
            # is identical, and exhaustion/draw-cap failures surface with
            # the scalar path's exact semantics.
            record = self.sketch(
                str(user_ids[position]),
                rows[position],
                subset_t,
                coins=coins.user(int(indices[position]), run_index),
            )
            keys_out[position] = record.key
            iterations_out[position] = record.iterations
        return keys_out, iterations_out

    @staticmethod
    def _project(profile: Sequence[int], subset: Tuple[int, ...]) -> Tuple[int, ...]:
        """Return ``d_B``: the sub-vector of ``profile`` induced by ``subset``."""
        value = []
        for position in subset:
            bit = int(profile[position])
            if bit not in (0, 1):
                raise ValueError(f"profile bit at position {position} is {bit}, not 0/1")
            value.append(bit)
        return tuple(value)
