"""Vectorised Philox4x64-10 — the counter-mode primitive behind the fast paths.

Philox (Salmon et al., SC'11 — the Random123 family) is a *counter-based*
generator: the four 64-bit output words are a pure function of a 256-bit
counter and a 128-bit key, so any point of the stream can be evaluated in
any order, on any machine, with no sequential state.  That random-access
property is exactly what the :class:`~repro.core.prf.CounterPRF` backend
and the deterministic collection coins need — every ``(user, value, key)``
point owns a fixed counter, and a whole ``(users x candidate-keys)`` block
evaluates as one NumPy array pass with zero per-point Python.

Two entry points share one algorithm:

* :func:`philox4x64` — the reference form: broadcastable inputs, one
  fresh temporary per operation.  Used for scalars and small arrays.
* :func:`philox4x64_zero_tail` — the bulk form for the hot paths, which
  all fix the two high counter words to zero: 1-D inputs, processed in
  cache-sized chunks through a pre-allocated scratch pool with ``out=``
  on every operation (the round function is ~350 vector ops, so keeping
  the working set inside the CPU cache roughly halves the wall-clock of
  a multi-hundred-thousand-point pass), and a specialised first round
  (``c2 = c3 = 0`` makes one of the two 64x64 multiplies vanish).
  Bitwise identical to the reference form — pinned by tests.

:func:`philox4x64` is the same Philox4x64 with 10 rounds that backs
``numpy.random.Philox``, re-expressed as NumPy ``uint64`` array arithmetic
(wrapping multiplies, 32-bit limb products for the high words).  Bitwise
agreement with NumPy's generator is pinned by tests: for any ``key`` and
``counter``,

    ``np.random.Philox(counter=c, key=k).random_raw(4)``

equals ``philox4x64(c0 + 1, c1, c2, c3, k0, k1)`` — NumPy increments the
counter's low word once before producing its first block.  NumPy's uint64
arithmetic wraps identically on every platform, so outputs are
bitwise-reproducible across processes, operating systems, and
architectures.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["philox4x64", "philox4x64_zero_tail", "uniform_doubles"]

# Philox4x64 round constants (Random123 / numpy.random.Philox).
_M0 = np.uint64(0xD2E7470EE14C6C93)
_M1 = np.uint64(0xCA5A826395121157)
_W0 = np.uint64(0x9E3779B97F4A7C15)
_W1 = np.uint64(0xBB67AE8584CAA73B)
_MASK32 = np.uint64(0xFFFFFFFF)
_S32 = np.uint64(32)
_S11 = np.uint64(11)
# 2^-53: scales a 53-bit integer into [0, 1) exactly like numpy's
# uint64-to-double conversion.
_INV53 = 1.0 / float(1 << 53)

_ROUNDS = 10
# Bulk chunk size: ~12 live uint64 buffers of this length stay inside a
# typical per-core cache, which is where the bulk form wins its ~2x.
_CHUNK = 8192


def _mulhilo(a: np.uint64, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Low and high 64-bit halves of the 128-bit product ``a * b``.

    ``a`` is one of the two scalar Philox multipliers; ``b`` an array.
    The low half is a single wrapping multiply; the high half assembles
    from 32-bit limb products (the classic schoolbook split).
    """
    lo = a * b
    ah, al = a >> _S32, a & _MASK32
    bh, bl = b >> _S32, b & _MASK32
    carry = (al * bl) >> _S32
    mid1 = ah * bl + carry
    mid2 = al * bh + (mid1 & _MASK32)
    hi = ah * bh + (mid1 >> _S32) + (mid2 >> _S32)
    return lo, hi


def philox4x64(
    c0: np.ndarray,
    c1: np.ndarray,
    c2: np.ndarray,
    c3: np.ndarray,
    k0: np.ndarray,
    k1: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The Philox4x64-10 block function, vectorised over counters and keys.

    Parameters are broadcast-compatible ``uint64`` arrays (or scalars):
    four counter words and two key words per point.  Returns the four
    output words.  Pure and stateless — the same inputs give the same
    words on every platform, which is what makes both the
    :class:`~repro.core.prf.CounterPRF` construction and the collection
    coin schedule reproducible anywhere.
    """
    c0 = np.asarray(c0, dtype=np.uint64)
    c1 = np.asarray(c1, dtype=np.uint64)
    c2 = np.asarray(c2, dtype=np.uint64)
    c3 = np.asarray(c3, dtype=np.uint64)
    k0 = np.asarray(k0, dtype=np.uint64)
    k1 = np.asarray(k1, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for round_index in range(_ROUNDS):
            if round_index:
                k0 = k0 + _W0
                k1 = k1 + _W1
            lo0, hi0 = _mulhilo(_M0, c0)
            lo1, hi1 = _mulhilo(_M1, c2)
            c0, c1, c2, c3 = hi1 ^ c1 ^ k0, lo1, hi0 ^ c3 ^ k1, lo0
    return c0, c1, c2, c3


def _mulhilo_into(
    a_hi: np.uint64,
    a_lo: np.uint64,
    a: np.uint64,
    src: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    u: np.ndarray,
    u2: np.ndarray,
) -> None:
    """In-place :func:`_mulhilo`: ``lo``/``hi`` out, ``u``/``u2`` scratch.

    ``src`` is read-only; none of ``lo``/``hi``/``u``/``u2`` may alias it.
    """
    np.bitwise_and(src, _MASK32, out=u)  # bl
    np.multiply(a_lo, u, out=hi)  # al * bl
    np.right_shift(hi, _S32, out=hi)  # carry
    np.multiply(a_hi, u, out=u)  # ah * bl
    np.add(u, hi, out=u)  # mid1
    np.right_shift(src, _S32, out=hi)  # bh
    np.multiply(a_lo, hi, out=u2)  # al * bh
    np.multiply(a_hi, hi, out=hi)  # ah * bh
    np.bitwise_and(u, _MASK32, out=lo)
    np.add(u2, lo, out=u2)  # mid2
    np.right_shift(u2, _S32, out=u2)
    np.right_shift(u, _S32, out=u)
    np.add(hi, u, out=hi)
    np.add(hi, u2, out=hi)  # hi done
    np.multiply(a, src, out=lo)  # lo done


_M0_HI, _M0_LO = _M0 >> _S32, _M0 & _MASK32
_M1_HI, _M1_LO = _M1 >> _S32, _M1 & _MASK32


def _zero_tail_chunk(
    c0: np.ndarray,
    c1: np.ndarray,
    k0: np.ndarray,
    k1: np.ndarray,
    pool: list,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One cache-sized chunk of :func:`philox4x64_zero_tail`.

    ``pool`` holds twelve scratch buffers at least as long as the chunk.
    Returns views into the pool — the caller copies them out before the
    next chunk reuses the buffers.
    """
    n = c0.size
    a0, a1, a2, a3, b0, b1, b2, b3, kk0, kk1, u, u2 = (buf[:n] for buf in pool)
    np.copyto(kk0, k0)
    np.copyto(kk1, k1)
    # Round 1, specialised for c2 = c3 = 0: the M1 multiply of zero
    # vanishes, so the round is one mulhilo plus two xors.
    np.bitwise_xor(c1, kk0, out=a0)
    a1[:] = 0
    _mulhilo_into(_M0_HI, _M0_LO, _M0, c0, a3, a2, u, u2)
    np.bitwise_xor(a2, kk1, out=a2)
    cur = (a0, a1, a2, a3)
    nxt = (b0, b1, b2, b3)
    for _ in range(_ROUNDS - 1):
        np.add(kk0, _W0, out=kk0)
        np.add(kk1, _W1, out=kk1)
        r0, r1, r2, r3 = cur
        n0, n1, n2, n3 = nxt
        _mulhilo_into(_M1_HI, _M1_LO, _M1, r2, n1, n0, u, u2)  # lo1, hi1
        np.bitwise_xor(n0, r1, out=n0)
        np.bitwise_xor(n0, kk0, out=n0)
        _mulhilo_into(_M0_HI, _M0_LO, _M0, r0, n3, n2, u, u2)  # lo0, hi0
        np.bitwise_xor(n2, r3, out=n2)
        np.bitwise_xor(n2, kk1, out=n2)
        cur, nxt = nxt, cur
    return cur


def philox4x64_zero_tail(
    c0: np.ndarray,
    c1: np.ndarray,
    k0: np.ndarray,
    k1: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Bulk Philox4x64-10 at counters ``(c0, c1, 0, 0)``.

    Bitwise identical to ``philox4x64(c0, c1, 0, 0, k0, k1)``; the hot
    paths call this form because their counter layouts never use the two
    high words.  Inputs are 1-D uint64 arrays of one length (``k0``/``k1``
    may also be scalars); the pass runs in cache-sized chunks through a
    scratch pool so the ~350-operation round sequence stays cache-resident.
    """
    c0 = np.ascontiguousarray(c0, dtype=np.uint64)
    c1 = np.ascontiguousarray(c1, dtype=np.uint64)
    n = c0.size
    keys_scalar = np.ndim(k0) == 0
    if not keys_scalar:
        k0 = np.ascontiguousarray(k0, dtype=np.uint64)
        k1 = np.ascontiguousarray(k1, dtype=np.uint64)
    else:
        k0 = np.uint64(k0)
        k1 = np.uint64(k1)
    outs = tuple(np.empty(n, dtype=np.uint64) for _ in range(4))
    pool = [np.empty(min(n, _CHUNK), dtype=np.uint64) for _ in range(12)]
    with np.errstate(over="ignore"):
        for start in range(0, n, _CHUNK):
            end = min(start + _CHUNK, n)
            words = _zero_tail_chunk(
                c0[start:end],
                c1[start:end],
                k0 if keys_scalar else k0[start:end],
                k1 if keys_scalar else k1[start:end],
                pool,
            )
            for out, word in zip(outs, words):
                out[start:end] = word
    return outs


def philox4x64_rows(
    c0_rows: np.ndarray,
    c1_rows: np.ndarray,
    k0_users: np.ndarray,
    k1_users: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Bulk zero-tail Philox over a ``(users, blocks)`` lattice.

    ``c0_rows`` and ``c1_rows`` broadcast to one ``(M, B)`` shape —
    typically one of them is per-user (``(M, 1)``) and the other
    per-block (``(1, B)``) — and ``k0_users``/``k1_users`` carry one key
    word per user.  Materialising the broadcast happens chunk by chunk
    inside the cache-blocked driver, so no full-size ``repeat``/``tile``
    arrays are ever allocated.  Returns four ``(M, B)`` word arrays;
    bitwise identical to calling :func:`philox4x64` point-wise.
    """
    c0_rows = np.asarray(c0_rows, dtype=np.uint64)
    c1_rows = np.asarray(c1_rows, dtype=np.uint64)
    shape = np.broadcast_shapes(c0_rows.shape, c1_rows.shape)
    if len(shape) != 2:
        raise ValueError(f"expected 2-D (users, blocks) rows, got shape {shape}")
    num_users, num_blocks = shape
    k0_users = np.asarray(k0_users, dtype=np.uint64)
    k1_users = np.asarray(k1_users, dtype=np.uint64)
    outs = tuple(np.empty(shape, dtype=np.uint64) for _ in range(4))
    if num_users == 0 or num_blocks == 0:
        return outs
    users_per_chunk = max(1, _CHUNK // num_blocks)
    chunk_elements = users_per_chunk * num_blocks
    pool = [
        np.empty(min(num_users * num_blocks, chunk_elements), dtype=np.uint64)
        for _ in range(12)
    ]
    c0_bc = np.broadcast_to(c0_rows, shape)
    c1_bc = np.broadcast_to(c1_rows, shape)
    keys_scalar = k0_users.ndim == 0
    with np.errstate(over="ignore"):
        for start in range(0, num_users, users_per_chunk):
            end = min(start + users_per_chunk, num_users)
            span = (end - start) * num_blocks
            c0 = np.ascontiguousarray(c0_bc[start:end]).reshape(span)
            c1 = np.ascontiguousarray(c1_bc[start:end]).reshape(span)
            if keys_scalar:
                k0, k1 = k0_users, k1_users
            else:
                k0 = np.repeat(k0_users[start:end], num_blocks)
                k1 = np.repeat(k1_users[start:end], num_blocks)
            words = _zero_tail_chunk(c0, c1, k0, k1, pool)
            for out, word in zip(outs, words):
                out[start:end] = word.reshape(end - start, num_blocks)
    return outs


def uniform_doubles(words: np.ndarray) -> np.ndarray:
    """Map uint64 words to float64 uniforms in ``[0, 1)``.

    The standard 53-bit conversion (drop 11 low bits, scale by 2^-53) —
    the same mapping ``numpy.random.Generator.random`` applies to its raw
    words, so the coins carry full double precision.
    """
    return (np.asarray(words, dtype=np.uint64) >> _S11) * _INV53
