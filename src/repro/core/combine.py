"""Appendix F — combining sketches to answer union-of-subsets queries.

Suppose each user sketched subsets ``B_1, ..., B_q`` separately and the
analyst wants the conjunction over the union ``B = B_1 ∪ ... ∪ B_q`` at a
value ``v`` projecting to ``v_1, ..., v_q``.  For each user ``u`` and each
``i``, the evaluation ``H(id, B_i, v_i, s_{u,i})`` is a p-perturbed virtual
bit indicating ``d_{B_i} = v_i`` (Lemma 3.2).  The question becomes: given
``k`` bits per user, each independently flipped with probability ``p``,
estimate how many users originally had **all** ``k`` bits equal to 1.

Because every bit is perturbed with the *same* probability, the
2^k-dimensional system of Agrawal et al. collapses to size ``k + 1``: only
the Hamming weight matters.  The transition kernel is the paper's eq. (6):

    ``v[l -> l'] = sum_h  C(l, h) C(k-l, l'-l+h) p^{l'-l+2h} (1-p)^{k-(l'-l+2h)}``

where ``h`` counts originally-set bits flipped to 0.  Writing ``V`` for the
``(k+1) x (k+1)`` matrix of these kernels, ``E[y] = V x`` relates the
observed weight histogram ``y`` to the true one ``x``, so ``x ≈ V^{-1} y``.

The appendix closes with the observation that the conditioning of ``V``
degrades exponentially in ``k`` (with base growing as ``p -> 1/2``) — this
is the quantitative reason sketching *whole subsets* beats per-bit
randomized response for wide queries, and benchmark E14 measures it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .estimator import SketchEstimator
from .sketch import Sketch

__all__ = [
    "transition_probability",
    "perturbation_matrix",
    "condition_number",
    "weight_histogram",
    "solve_weight_counts",
    "CombinedEstimate",
    "combine_from_weight_counts",
    "combine_virtual_bits",
    "combine_aligned_bits",
    "combine_sketch_groups",
    "mixed_perturbation_matrix",
    "combine_mixed_bits",
]


def transition_probability(k: int, before: int, after: int, p: float) -> float:
    """Probability ``v[l -> l']`` of eq. (6).

    A ``k``-bit word with ``before`` ones becomes one with ``after`` ones
    when each bit flips independently with probability ``p``.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if not 0 <= before <= k or not 0 <= after <= k:
        raise ValueError(f"weights must be in [0, {k}], got {before} -> {after}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0,1], got {p}")
    total = 0.0
    # h = number of ones flipped to zero; then (after - before + h) zeros must
    # flip to one, which pins the feasible range of h.
    h_low = max(0, before - after)
    h_high = min(before, k - after)
    for h in range(h_low, h_high + 1):
        ones_to_zero = h
        zeros_to_one = after - before + h
        flips = ones_to_zero + zeros_to_one
        total += (
            math.comb(before, ones_to_zero)
            * math.comb(k - before, zeros_to_one)
            * p**flips
            * (1.0 - p) ** (k - flips)
        )
    return total


def perturbation_matrix(k: int, p: float) -> np.ndarray:
    """The ``(k+1) x (k+1)`` kernel matrix ``V`` with ``V[l', l] = v[l -> l']``.

    Columns index the original Hamming weight, rows the observed one, so
    ``E[y] = V x`` for column vectors of weight frequencies.  Every column
    sums to 1 (it is a probability kernel).
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    matrix = np.empty((k + 1, k + 1), dtype=np.float64)
    for original in range(k + 1):
        for observed in range(k + 1):
            matrix[observed, original] = transition_probability(k, original, observed, p)
    return matrix


def condition_number(k: int, p: float) -> float:
    """Spectral condition number of ``V`` — Appendix F's closing study.

    Grows roughly exponentially in ``k`` with base proportional to
    ``1 / (1 - 2p)`` (the paper writes ``1/(p - 1/2)`` up to sign), which is
    why per-bit reconstruction of wide conjunctions is hopeless while a
    single whole-subset sketch stays accurate.
    """
    return float(np.linalg.cond(perturbation_matrix(k, p)))


def weight_histogram(bits_per_user: np.ndarray, k: int | None = None) -> np.ndarray:
    """Histogram of per-user Hamming weights as fractions.

    Parameters
    ----------
    bits_per_user:
        Array of shape ``(M, k)`` with 0/1 entries: one row of (virtual)
        bits per user.
    k:
        Word width; inferred from the array when omitted.
    """
    array = np.asarray(bits_per_user)
    if array.ndim != 2:
        raise ValueError(f"expected a 2-D (users x bits) array, got shape {array.shape}")
    width = array.shape[1] if k is None else k
    if array.shape[1] != width:
        raise ValueError(f"array width {array.shape[1]} does not match k={width}")
    weights = array.sum(axis=1).astype(np.int64)
    histogram = np.bincount(weights, minlength=width + 1).astype(np.float64)
    return histogram / array.shape[0]


def solve_weight_counts(observed: np.ndarray, p: float) -> np.ndarray:
    """Solve ``x = V^{-1} y`` for the original weight distribution.

    ``observed`` is the observed weight histogram (fractions summing to 1).
    Returns the estimated original histogram ``x``; entries can leave
    ``[0, 1]`` when the system is ill-conditioned — callers interested in
    the headline answer typically read ``x[-1]`` (all bits set) and clamp.
    """
    y = np.asarray(observed, dtype=np.float64)
    k = y.size - 1
    matrix = perturbation_matrix(k, p)
    return np.linalg.solve(matrix, y)


@dataclass(frozen=True)
class CombinedEstimate:
    """Result of an Appendix F combined query.

    Attributes
    ----------
    fraction:
        Estimated fraction of users satisfying the conjunction over the
        union of subsets (all virtual bits originally 1).
    none_fraction:
        Estimated fraction satisfying *no* component query (all bits
        originally 0) — the paper notes this yields disjunction-of-
        conjunction counts by complementation.
    weight_distribution:
        The full reconstructed distribution over ``0..k`` satisfied
        components; entry ``l`` estimates the fraction of users matching
        exactly ``l`` of the ``k`` component queries.
    condition:
        Condition number of the kernel ``V`` actually inverted — the
        noise-amplification factor Appendix F warns about.
    num_users:
        Number of contributing users.
    """

    fraction: float
    none_fraction: float
    weight_distribution: np.ndarray
    condition: float
    num_users: int

    @property
    def clamped_fraction(self) -> float:
        """``fraction`` clipped into ``[0, 1]``."""
        return min(1.0, max(0.0, self.fraction))


def combine_virtual_bits(bits_per_user: np.ndarray, p: float) -> CombinedEstimate:
    """Appendix F reconstruction from a ``(users x k)`` virtual-bit matrix."""
    array = np.asarray(bits_per_user)
    histogram = weight_histogram(array)
    solved = solve_weight_counts(histogram, p)
    k = array.shape[1]
    return CombinedEstimate(
        fraction=float(solved[-1]),
        none_fraction=float(solved[0]),
        weight_distribution=solved,
        condition=condition_number(k, p),
        num_users=array.shape[0],
    )


def combine_aligned_bits(
    bit_columns: Sequence[np.ndarray], p: float
) -> CombinedEstimate:
    """Appendix F reconstruction from per-subset aligned virtual-bit columns.

    The column-speaking entry point of the combination: each element of
    ``bit_columns`` is one subset's p-perturbed indicator vector, already
    gathered onto a common user order (row ``u`` of every column belongs
    to the same user — :meth:`repro.server.collector.SketchStore.aligned_columns`
    produces exactly such gathers from full cached evaluation columns).
    Produces the same floats as :func:`combine_sketch_groups` over the
    corresponding sketch groups.
    """
    if not bit_columns:
        raise ValueError("need at least one bit column")
    columns = [np.asarray(column) for column in bit_columns]
    for column in columns:
        if column.ndim != 1:
            raise ValueError(
                f"expected 1-D per-user bit columns, got shape {column.shape}"
            )
    sizes = {column.size for column in columns}
    if len(sizes) != 1:
        raise ValueError(f"bit columns have mismatched user counts: {sorted(sizes)}")
    return combine_virtual_bits(np.column_stack(columns), p)


def combine_from_weight_counts(
    counts: Sequence[int], num_users: int, p: float
) -> CombinedEstimate:
    """Appendix F reconstruction from an *integer* Hamming-weight histogram.

    The reduction-side entry point for sharded serving: ``counts[w]`` is
    the number of aligned users whose ``k`` virtual bits have weight
    ``w`` (so ``len(counts) == k + 1`` and ``sum(counts) == num_users``).
    Disjoint user ranges reduce by integer addition, and the fractions
    ``counts / num_users`` are the same correctly-rounded float64
    divisions :func:`weight_histogram` performs over the concatenated
    matrix — so a coordinator that sums per-shard histograms and calls
    this produces floats bit-identical to :func:`combine_virtual_bits`.
    """
    histogram = np.asarray(counts, dtype=np.float64)
    if histogram.ndim != 1 or histogram.size < 1:
        raise ValueError(
            f"expected a 1-D (k+1)-entry weight histogram, got shape {histogram.shape}"
        )
    if num_users <= 0:
        raise ValueError(f"num_users must be positive, got {num_users}")
    k = histogram.size - 1
    solved = solve_weight_counts(histogram / int(num_users), p)
    return CombinedEstimate(
        fraction=float(solved[-1]),
        none_fraction=float(solved[0]),
        weight_distribution=solved,
        condition=condition_number(k, p),
        num_users=int(num_users),
    )


def combine_sketch_groups(
    estimator: SketchEstimator,
    sketch_groups: Sequence[Sequence[Sketch]],
    values: Sequence[Sequence[int]],
) -> CombinedEstimate:
    """Answer a conjunction over a union of sketched subsets (Appendix F).

    Parameters
    ----------
    estimator:
        The aggregator-side estimator (supplies the PRF and ``p``).
    sketch_groups:
        One sequence of sketches per subset ``B_i``; the ``u``-th entry of
        every group must belong to the same user (aligned by position).
    values:
        The projections ``v_i`` of the query value onto each ``B_i``.

    Returns
    -------
    CombinedEstimate
        Reconstruction of how many users match all / none / exactly-``l``
        of the component queries.
    """
    if len(sketch_groups) != len(values):
        raise ValueError(
            f"got {len(sketch_groups)} sketch groups but {len(values)} value projections"
        )
    if not sketch_groups:
        raise ValueError("need at least one sketch group")
    sizes = {len(group) for group in sketch_groups}
    if len(sizes) != 1:
        raise ValueError(f"sketch groups have mismatched user counts: {sorted(sizes)}")
    for group in sketch_groups[1:]:
        for first, other in zip(sketch_groups[0], group):
            if first.user_id != other.user_id:
                raise ValueError(
                    "sketch groups are not user-aligned: "
                    f"{first.user_id!r} vs {other.user_id!r}"
                )
    columns = [
        estimator.evaluations(group, value)
        for group, value in zip(sketch_groups, values)
    ]
    return combine_aligned_bits(columns, estimator.params.p)


# ----------------------------------------------------------------------
# Mixed-bias extension (needed by Appendix E's virtual XOR bits)
# ----------------------------------------------------------------------
def mixed_perturbation_matrix(k1: int, p1: float, k2: int, p2: float) -> np.ndarray:
    """Product kernel for two bit groups with different flip probabilities.

    Appendix E mixes *real* bits (p-perturbed) with *virtual* XOR bits
    (``2p(1-p)``-perturbed) inside one conjunction.  Because groups flip
    independently, the joint Hamming-weight kernel is the Kronecker product
    of the per-group kernels; the joint state ``(w1, w2)`` is flattened as
    ``w1 * (k2 + 1) + w2``.
    """
    first = perturbation_matrix(k1, p1)
    second = perturbation_matrix(k2, p2)
    return np.kron(first, second)


def combine_mixed_bits(
    bits_group1: np.ndarray,
    bits_group2: np.ndarray,
    p1: float,
    p2: float,
) -> float:
    """Estimate the fraction of users with **all** bits of both groups set.

    Parameters
    ----------
    bits_group1, bits_group2:
        ``(M, k1)`` and ``(M, k2)`` observed 0/1 matrices, row-aligned by
        user.  Either group may have zero columns (shape ``(M, 0)``), in
        which case the estimate reduces to the single-group system.
    p1, p2:
        The per-bit flip probabilities of the two groups.

    Returns
    -------
    float
        Estimated fraction of users whose *original* bits are all 1 in
        both groups (may leave ``[0, 1]`` under heavy noise; callers
        clamp when presenting the headline number).
    """
    group1 = np.asarray(bits_group1)
    group2 = np.asarray(bits_group2)
    if group1.ndim != 2 or group2.ndim != 2:
        raise ValueError(
            f"expected 2-D matrices, got shapes {group1.shape} and {group2.shape}"
        )
    if group1.shape[0] != group2.shape[0]:
        raise ValueError(
            f"groups are not user-aligned: {group1.shape[0]} vs {group2.shape[0]} rows"
        )
    num_users = group1.shape[0]
    if num_users == 0:
        raise ValueError("cannot combine zero users")
    k1, k2 = group1.shape[1], group2.shape[1]
    if k1 == 0 and k2 == 0:
        raise ValueError("both groups are empty; the conjunction is trivially true")
    if k2 == 0:
        return combine_virtual_bits(group1, p1).fraction
    if k1 == 0:
        return combine_virtual_bits(group2, p2).fraction

    weights1 = group1.sum(axis=1).astype(np.int64)
    weights2 = group2.sum(axis=1).astype(np.int64)
    joint = np.zeros(((k1 + 1) * (k2 + 1),), dtype=np.float64)
    flat = weights1 * (k2 + 1) + weights2
    np.add.at(joint, flat, 1.0)
    joint /= num_users
    kernel = mixed_perturbation_matrix(k1, p1, k2, p2)
    solved = np.linalg.solve(kernel, joint)
    return float(solved[-1])
