"""Section 5 future work — sketching arbitrary functions of a profile.

"A natural generalization of sketching bit subsets is sketching arbitrary
functions of a user profile.  The same privacy guarantees apply."

Nothing in Algorithm 1 or Lemma 3.3 uses the structure of ``d_B``: the
algorithm only needs *some* deterministic value derived from the profile to
feed the public function.  Replacing ``(B, d_B)`` with ``(function-id,
f(d))`` therefore yields a sketch of ``f(d)`` with identical privacy — the
publish distribution is within ``((1-p)/p)**4`` of value-independent — and
identical utility: the aggregator estimates ``Pr[f(d) = v]`` for any
candidate output ``v`` by the usual de-biasing.

Registered functions must have a *finite, enumerable* output encoding
(a tuple of bits), mirroring the paper's bit-subset outputs.  Examples that
unlock queries plain subsets cannot express in one shot:

* parity of a bit subset  -> direct parity frequency, no Appendix F system;
* ``a > b`` comparator    -> direct comparator frequency;
* bucketised aggregates (e.g. salary decile) -> direct histogram queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from .estimator import QueryEstimate, SketchEstimator
from .params import PrivacyParams
from .prf import BiasedFunction
from .sketch import Sketch, SketchFailure

__all__ = ["ProfileFunction", "FunctionSketcher", "FunctionEstimator"]

# A registered function's id is encoded as a reserved pseudo-subset so the
# regular Sketch record (and the PRF input encoding) can carry it without a
# new wire format: position -1 never collides with real profile bits, and
# the function id is folded into the user-visible name instead.
_FUNCTION_TAG = "fn:"


@dataclass(frozen=True)
class ProfileFunction:
    """A deterministic, publicly-known function of the private profile.

    Attributes
    ----------
    name:
        Unique public identifier; becomes part of the PRF input so
        different functions get independent randomness.
    output_bits:
        Width of the output encoding.
    evaluate:
        ``profile bits -> output`` as a tuple of ``output_bits`` 0/1
        values.  Must be deterministic — both the user and any verifier
        must agree on ``f(d)`` for the same ``d``.
    """

    name: str
    output_bits: int
    evaluate: Callable[[Sequence[int]], Tuple[int, ...]]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a profile function needs a non-empty name")
        if self.output_bits < 1:
            raise ValueError(f"output_bits must be >= 1, got {self.output_bits}")

    def __call__(self, profile: Sequence[int]) -> Tuple[int, ...]:
        output = tuple(int(bit) for bit in self.evaluate(profile))
        if len(output) != self.output_bits:
            raise ValueError(
                f"function {self.name!r} returned {len(output)} bits, "
                f"declared {self.output_bits}"
            )
        if any(bit not in (0, 1) for bit in output):
            raise ValueError(f"function {self.name!r} returned non-binary output")
        return output

    # ------------------------------------------------------------------
    # Common constructors
    # ------------------------------------------------------------------
    @classmethod
    def parity(cls, positions: Sequence[int], name: str | None = None) -> "ProfileFunction":
        """XOR of a bit subset — one sketch answers parity frequency."""
        positions = tuple(int(i) for i in positions)
        label = name or f"parity({','.join(map(str, positions))})"

        def evaluate(profile: Sequence[int]) -> Tuple[int, ...]:
            total = 0
            for position in positions:
                total ^= int(profile[position])
            return (total,)

        return cls(label, 1, evaluate)

    @classmethod
    def comparator(
        cls, positions_a: Sequence[int], positions_b: Sequence[int], name: str | None = None
    ) -> "ProfileFunction":
        """Indicator of ``a > b`` for two MSB-first encoded integers."""
        positions_a = tuple(int(i) for i in positions_a)
        positions_b = tuple(int(i) for i in positions_b)
        label = name or "greater(a,b)"

        def evaluate(profile: Sequence[int]) -> Tuple[int, ...]:
            value_a = 0
            for position in positions_a:
                value_a = (value_a << 1) | int(profile[position])
            value_b = 0
            for position in positions_b:
                value_b = (value_b << 1) | int(profile[position])
            return (1 if value_a > value_b else 0,)

        return cls(label, 1, evaluate)

    @classmethod
    def bucket(
        cls,
        positions: Sequence[int],
        boundaries: Sequence[int],
        name: str | None = None,
    ) -> "ProfileFunction":
        """Bucket index of an MSB-first integer attribute.

        ``boundaries`` are inclusive upper bounds of all but the last
        bucket; the output is the bucket index in binary.
        """
        positions = tuple(int(i) for i in positions)
        bounds = tuple(int(b) for b in boundaries)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"boundaries must be strictly increasing, got {bounds}")
        num_buckets = len(bounds) + 1
        width = max(1, (num_buckets - 1).bit_length())
        label = name or f"bucket({len(bounds) + 1})"

        def evaluate(profile: Sequence[int]) -> Tuple[int, ...]:
            value = 0
            for position in positions:
                value = (value << 1) | int(profile[position])
            index = num_buckets - 1
            for i, bound in enumerate(bounds):
                if value <= bound:
                    index = i
                    break
            return tuple((index >> (width - 1 - i)) & 1 for i in range(width))

        return cls(label, width, evaluate)


class FunctionSketcher:
    """Algorithm 1 applied to ``f(d)`` instead of ``d_B``.

    The implementation delegates to the PRF directly rather than wrapping
    :class:`~repro.core.sketch.Sketcher`, because the PRF input carries
    the function *name* in place of the bit subset.  Privacy accounting is
    unchanged: one function sketch costs exactly one Lemma 3.3 factor.
    """

    def __init__(
        self,
        params: PrivacyParams,
        prf: BiasedFunction,
        sketch_bits: int = 10,
        rng: np.random.Generator | None = None,
    ) -> None:
        if abs(prf.p - params.p) > 1e-12:
            raise ValueError(
                f"PRF bias {prf.p} does not match privacy parameter p={params.p}"
            )
        if not 1 <= sketch_bits <= 30:
            raise ValueError(f"sketch_bits must be in [1, 30], got {sketch_bits}")
        self.params = params
        self.prf = prf
        self.sketch_bits = sketch_bits
        self._rng = rng if rng is not None else np.random.default_rng()

    def _evaluate_prf(
        self, user_id: str, function: ProfileFunction, value: Tuple[int, ...], key: int
    ) -> int:
        # The function name rides inside the user-id channel (prefixed and
        # length-safe via encode_input's framing); the pseudo-subset encodes
        # only the output positions 0..width-1.
        tagged_id = f"{user_id}|{_FUNCTION_TAG}{function.name}"
        subset = tuple(range(function.output_bits))
        return self.prf.evaluate(tagged_id, subset, value, key)

    def sketch(
        self, user_id: str, profile: Sequence[int], function: ProfileFunction
    ) -> Sketch:
        """Publish a sketch of ``function(profile)`` (Algorithm 1 verbatim)."""
        true_value = function(profile)
        accept_prob = self.params.rejection_probability
        order = self._rng.permutation(1 << self.sketch_bits)
        for iteration, key in enumerate(order, start=1):
            key = int(key)
            if self._evaluate_prf(user_id, function, true_value, key) == 1:
                return Sketch(
                    f"{user_id}|{_FUNCTION_TAG}{function.name}",
                    tuple(range(function.output_bits)),
                    key,
                    self.sketch_bits,
                    iteration,
                )
            if self._rng.random() < accept_prob:
                return Sketch(
                    f"{user_id}|{_FUNCTION_TAG}{function.name}",
                    tuple(range(function.output_bits)),
                    key,
                    self.sketch_bits,
                    iteration,
                )
        raise SketchFailure(
            f"all {1 << self.sketch_bits} keys exhausted sketching "
            f"{function.name!r} for user {user_id!r}"
        )


class FunctionEstimator:
    """Estimate ``Pr[f(d) = v]`` from function sketches (Algorithm 2)."""

    def __init__(self, params: PrivacyParams, prf: BiasedFunction, clamp: bool = True) -> None:
        self._inner = SketchEstimator(params, prf, clamp=clamp)

    @property
    def params(self) -> PrivacyParams:
        return self._inner.params

    def estimate(
        self,
        sketches: Sequence[Sketch],
        value: Sequence[int],
        delta: float = 0.05,
    ) -> QueryEstimate:
        """Fraction of users whose ``f(d)`` equals ``value``.

        The sketches must all come from the same registered function (their
        tagged ids embed the function name, so mixing is detected by the
        subset/width check plus the estimator's own consistency checks).
        """
        return self._inner.estimate(sketches, value, delta=delta)

    def estimate_many(
        self,
        sketches: Sequence[Sketch],
        values: Sequence[Sequence[int]],
        delta: float = 0.05,
    ) -> list[QueryEstimate]:
        """Estimates for several candidate outputs from one PRF block call."""
        return self._inner.estimate_many(sketches, values, delta=delta)

    def histogram(
        self, sketches: Sequence[Sketch], output_bits: int
    ) -> np.ndarray:
        """De-biased frequency of every possible output value.

        Enumerates all ``2**output_bits`` candidates — intended for the
        small output widths (1-4 bits) function sketches target — and
        evaluates them in a single PRF block call.
        """
        if output_bits > 12:
            raise ValueError(
                f"histogram over 2**{output_bits} outputs is not sensible; "
                "query specific values instead"
            )
        candidates = [
            tuple((value >> (output_bits - 1 - i)) & 1 for i in range(output_bits))
            for value in range(1 << output_bits)
        ]
        estimates = self.estimate_many(sketches, candidates)
        return np.asarray([estimate.fraction for estimate in estimates])
