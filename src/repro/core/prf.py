"""The public pseudorandom p-biased function ``H``.

Section 3 of the paper assumes a public pseudorandom function

    ``H(id, B, v, s) -> {0, 1}``   with   ``Pr[H(...) = 1] = p``

at any fresh input, all evaluations mutually independent.  The paper builds
it from any collision-free hash (it names MD5 and WHIRLPOOL) via the
threshold trick: interpret the hash output ``v_1 ... v_lambda`` as the binary
expansion of a real in ``[0, 1)`` and report 1 iff that real is ``<= p``.

We substitute keyed BLAKE2b for MD5 — a strictly stronger primitive available
in the standard library — and implement exactly that threshold comparison on
the first 64 bits of output.  The *global key* corresponds to the paper's
>=300-bit generator key that defines the function for the whole database.

Three implementations share the :class:`BiasedFunction` interface:

* :class:`BiasedPRF` — the reference construction (deterministic, keyed
  hash; one BLAKE2b evaluation per point);
* :class:`CounterPRF` — the vectorised construction: one keyed BLAKE2b
  call derives a per-``(id, B)`` subkey, and every ``(value, key)`` point
  is then a counter-mode Philox4x64-10 evaluation under that subkey —
  whole ``(users x values x keys)`` blocks resolve as pure NumPy array
  arithmetic with zero per-point Python hashing;
* :class:`TrueRandomOracle` — a lazily-sampled truly random function, used by
  the analysis and test suites to mirror the paper's proof device of
  "assume all values of H were chosen uniformly at random".

The two deployed constructions are *distinct functions*: the same global
key defines different ``H`` under each backend, and everything keyed by
the PRF identity (the persistent evaluation cache, serialized metadata)
records which one was used via :attr:`BiasedFunction.algorithm` /
:meth:`BiasedFunction.spec`.
"""

from __future__ import annotations

import hashlib
import secrets
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from . import kernels
from .philox import philox4x64

__all__ = [
    "BiasedFunction",
    "BiasedPRF",
    "CounterPRF",
    "TrueRandomOracle",
    "encode_input",
    "prf_from_spec",
    "public_prf_meta",
    "validate_value_bits",
]

# 64 bits of hash output interpreted as a uniform integer; the threshold
# trick compares it against floor(p * 2^64).  Standard hash outputs are
# 128-512 bits — "much larger than the typical precision used to represent
# real values" (paper, footnote 3) — and 64 bits already exceeds double
# precision.
_PRECISION_BITS = 64
_SCALE = 1 << _PRECISION_BITS


def _prefix_head(user_id: str, subset_length: int) -> bytes:
    """The per-user half of the canonical prefix: both length headers
    plus the encoded id."""
    return (
        len(user_id).to_bytes(4, "big")
        + int(subset_length).to_bytes(4, "big")
        + user_id.encode("utf-8")
    )


def _subset_blob(subset: Tuple[int, ...]) -> bytes:
    """The per-subset half of the canonical prefix — constant per ``B``,
    so bulk paths hoist it out of their per-user loops."""
    return b"|B|" + b"".join(int(b).to_bytes(4, "big") for b in subset)


def _payload_prefix(user_id: str, subset: Tuple[int, ...]) -> bytes:
    """The ``id | B`` head of the canonical encoding — constant per user.

    The header length-prefixes both variable components, keeping the full
    encoding injective no matter how the three pieces are spliced.
    """
    return _prefix_head(user_id, len(subset)) + _subset_blob(subset)


def validate_value_bits(value: Sequence[int]) -> Tuple[int, ...]:
    """Normalise a candidate value to a tuple of strict 0/1 bits.

    Rejecting non-binary bits (instead of silently masking them) keeps
    :func:`encode_input` injective: masking with ``& 1`` would make a
    value bit of 2 collide with 0, so two distinct queries would hash to
    the same PRF point.
    """
    bits = []
    for bit in value:
        as_int = int(bit)
        if as_int not in (0, 1):
            raise ValueError(f"value bits must be 0 or 1, got {bit!r}")
        bits.append(as_int)
    return tuple(bits)


def _payload_value(value: Tuple[int, ...]) -> bytes:
    """The ``v`` chunk of the canonical encoding — constant per candidate."""
    return b"|v|" + bytes(validate_value_bits(value))


def _payload_suffix(key: int) -> bytes:
    """The ``s`` tail of the canonical encoding — constant per user."""
    return b"|s|" + int(key).to_bytes(8, "big")


def encode_input(user_id: str, subset: Tuple[int, ...], value: Tuple[int, ...], key: int) -> bytes:
    """Canonical byte encoding of an ``H`` input ``(id, B, v, s)``.

    The encoding is injective: each component is length-prefixed so distinct
    tuples can never collide as byte strings.  ``subset`` is the ordered
    tuple of bit positions ``B`` and ``value`` the candidate assignment
    ``v`` (one bit per position).

    The three pieces are built by the same helpers the block evaluator
    splices, so the block path produces byte-identical payloads.
    """
    if len(subset) != len(value):
        raise ValueError(
            f"subset and value must have equal length, got {len(subset)} and {len(value)}"
        )
    return _payload_prefix(user_id, subset) + _payload_value(value) + _payload_suffix(key)


class BiasedFunction(ABC):
    """Interface of the public p-biased function ``H``.

    Class attribute ``stateless`` declares whether evaluations are pure
    functions of the payload with no observable internal state.  A
    stateless function may be evaluated *speculatively* (a chunk of
    candidate keys ahead of Algorithm 1's stopping point) and *in other
    processes* (sharded collection) without changing any result.  The
    deployed :class:`BiasedPRF` is stateless; the memoising
    :class:`TrueRandomOracle` is not — its lazily-sampled table depends on
    the exact draw order, which extra or out-of-process evaluations would
    perturb.
    """

    #: Whether evaluations are pure in the payload (see class docstring).
    stateless: bool = False

    #: Construction identifier — part of the PRF *identity*: two backends
    #: with the same bias and global key are still different functions, so
    #: everything keyed by the PRF (the persistent evaluation cache,
    #: serialized store metadata) records this tag alongside the key.
    algorithm: str = "unspecified"

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"bias p must be in (0,1), got {p}")
        self.p = p
        self._threshold = int(p * _SCALE)

    @abstractmethod
    def _uniform64(self, payload: bytes) -> int:
        """Return a 64-bit integer that is (pseudo)uniform in the payload."""

    def evaluate(
        self,
        user_id: str,
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        key: int,
    ) -> int:
        """Evaluate ``H(id, B, v, s)`` — 1 with probability ``p``.

        The comparison ``uniform < floor(p * 2^64)`` realises the paper's
        binary-expansion threshold: for a uniform 64-bit word the result is 1
        with probability within ``2^-64`` of ``p``.
        """
        payload = encode_input(user_id, subset, value, key)
        return 1 if self._uniform64(payload) < self._threshold else 0

    def evaluate_many(
        self,
        user_ids: Iterable[str],
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        keys: Iterable[int],
    ) -> np.ndarray:
        """Vector of ``H(id_u, B, v, s_u)`` over aligned users and keys.

        This is the aggregator-side bulk evaluation used by Algorithm 2:
        one evaluation per user at the *query* value ``v`` with that user's
        published key.  A single-column :meth:`evaluate_block`, and bitwise
        identical to looping :meth:`evaluate`.
        """
        return self.evaluate_block(user_ids, subset, [value], keys)[:, 0]

    def evaluate_keys(
        self,
        user_id: str,
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        keys: Sequence[int],
    ) -> np.ndarray:
        """``(K,)`` int8 vector of ``H(id, B, v, s_k)`` over candidate keys.

        The *user-side* chunk primitive: Algorithm 1's rejection loop
        evaluates the true value ``d_B`` at a run of candidate keys, so
        here one ``(id, B, v)`` head is shared by every key.  Payloads are
        built in key order and fed through the scalar :meth:`_uniform64`,
        which keeps memoising implementations (the random oracle) sampling
        in exactly the order a scalar loop would; :class:`BiasedPRF`
        overrides this with a hash-state-copy fast path.  Bitwise
        identical to looping :meth:`evaluate`.
        """
        subset_t = tuple(int(b) for b in subset)
        value_t = validate_value_bits(value)
        if len(subset_t) != len(value_t):
            raise ValueError(
                f"subset and value must have equal length, got "
                f"{len(subset_t)} and {len(value_t)}"
            )
        head = _payload_prefix(user_id, subset_t) + _payload_value(value_t)
        uniform = self._uniform64
        threshold = self._threshold
        out = np.empty(len(keys), dtype=np.int8)
        for index, key in enumerate(keys):
            out[index] = 1 if uniform(head + _payload_suffix(int(key))) < threshold else 0
        return out

    def evaluate_grid(
        self,
        user_ids: Sequence[str],
        subset: Tuple[int, ...],
        values: Sequence[Tuple[int, ...]],
        key_rows: np.ndarray,
    ) -> np.ndarray:
        """``(U, K)`` int8 matrix of ``H(id_u, B, v_u, key_rows[u, k])``.

        The *multi-user* user-side primitive behind
        :meth:`~repro.core.sketch.Sketcher.sketch_many`: each row pairs
        one user's true value with that user's run of candidate keys, so
        a whole chunk of users advances Algorithm 1 together.  Unlike
        :meth:`evaluate_block` (one value list shared by all users), the
        value here varies *per user*.  The default implementation loops
        :meth:`evaluate_keys` row by row, which keeps memoising
        implementations sampling in scalar order; bulk backends override
        it.  Bitwise identical to looping :meth:`evaluate`.
        """
        rows = np.asarray(key_rows)
        if rows.ndim != 2 or len(user_ids) != rows.shape[0] or len(values) != rows.shape[0]:
            raise ValueError(
                f"user_ids ({len(user_ids)}), values ({len(values)}) and key "
                f"rows ({rows.shape}) must align on the user axis"
            )
        out = np.empty(rows.shape, dtype=np.int8)
        for index, (user_id, value) in enumerate(zip(user_ids, values)):
            out[index] = self.evaluate_keys(
                str(user_id), subset, value, rows[index].tolist()
            )
        return out

    def evaluate_block(
        self,
        user_ids: Iterable[str],
        subset: Tuple[int, ...],
        values: Sequence[Tuple[int, ...]],
        keys: Iterable[int],
    ) -> np.ndarray:
        """``(M, V)`` int8 matrix of ``H(id_u, B, v_j, s_u)``.

        The aggregator's batched hot path: every candidate value of a
        full-marginal or plan-group query against every user's published
        key in one call.  The per-user payload prefix (``id | B`` header)
        and suffix (``| s``) are built once per user and the per-value
        chunk once per value; each of the ``M * V`` evaluations is then a
        cheap splice instead of a full :func:`encode_input`, and the
        threshold comparison is vectorised over a uint64 array.  The
        result equals ``evaluate`` at every ``(u, j)`` bit for bit.
        """
        users = [str(uid) for uid in user_ids]
        key_list = [int(k) for k in keys]
        if len(users) != len(key_list):
            raise ValueError(
                f"user_ids and keys must align, got {len(users)} and {len(key_list)}"
            )
        subset_t = tuple(int(b) for b in subset)
        value_ts = [validate_value_bits(v) for v in values]
        for value_t in value_ts:
            if len(value_t) != len(subset_t):
                raise ValueError(
                    f"subset and value must have equal length, got "
                    f"{len(subset_t)} and {len(value_t)}"
                )
        num_users, num_values = len(users), len(value_ts)
        if num_users == 0 or num_values == 0:
            return np.zeros((num_users, num_values), dtype=np.int8)
        prefixes = [_payload_prefix(uid, subset_t) for uid in users]
        middles = [_payload_value(value_t) for value_t in value_ts]
        suffixes = [_payload_suffix(key) for key in key_list]
        words = self._uniform64_block(prefixes, middles, suffixes)
        bits = words < np.uint64(self._threshold)
        return bits.astype(np.int8).reshape(num_users, num_values)

    def _uniform64_block(
        self,
        prefixes: Sequence[bytes],
        middles: Sequence[bytes],
        suffixes: Sequence[bytes],
    ) -> np.ndarray:
        """Row-major ``(len(prefixes) * len(middles),)`` uint64 vector.

        ``prefixes`` and ``suffixes`` are user-aligned; ``middles`` hold
        the per-value chunks.  The default splices each payload and defers
        to :meth:`_uniform64`, which keeps memoising implementations (the
        random oracle) consistent with their scalar path; subclasses with
        a cheaper bulk primitive override it.
        """
        uniform = self._uniform64
        out = np.empty(len(prefixes) * len(middles), dtype=np.uint64)
        index = 0
        for prefix, suffix in zip(prefixes, suffixes):
            for middle in middles:
                out[index] = uniform(prefix + middle + suffix)
                index += 1
        return out

    def spec(self) -> dict:
        """Serializable description of this function: ``{algorithm, p, global_key}``.

        The shippable identity of a *stateless* PRF: a worker process (or a
        reader of serialized metadata) rebuilds an equivalent instance with
        :func:`prf_from_spec`.  Memoising implementations have no
        serializable identity and raise ``TypeError``.
        """
        global_key = getattr(self, "global_key", None)
        if not self.stateless or global_key is None:
            raise TypeError(
                f"{type(self).__name__} is not a keyed stateless PRF; it has "
                "no serializable spec"
            )
        return {
            "algorithm": self.algorithm,
            "p": float(self.p),
            "global_key": global_key.hex(),
        }


class BiasedPRF(BiasedFunction):
    """The deployed construction: keyed BLAKE2b + threshold trick.

    Parameters
    ----------
    p:
        Bias towards 1 at a random input.
    global_key:
        The database-wide generator key (paper: ">= 300 bits is more than
        sufficient").  Defaults to a fresh 32-byte (256-bit) random key; pass
        an explicit key to make a whole deployment reproducible.  BLAKE2b
        accepts keys up to 64 bytes, so a 300+ bit key is supported directly.
    """

    stateless = True
    algorithm = "blake2b"

    def __init__(self, p: float, global_key: bytes | None = None) -> None:
        super().__init__(p)
        if global_key is None:
            global_key = secrets.token_bytes(32)
        if not 16 <= len(global_key) <= 64:
            raise ValueError(
                f"global_key must be 16-64 bytes for keyed BLAKE2b, got {len(global_key)}"
            )
        self.global_key = global_key

    def evaluate_keys(
        self,
        user_id: str,
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        keys: Sequence[int],
    ) -> np.ndarray:
        # The (id, B, v) head is shared by every candidate key: absorb it
        # into one keyed BLAKE2b state, then copy() per key and splice the
        # suffix — the same stream-state trick evaluate_block plays on the
        # value axis, here on the key axis.
        subset_t = tuple(int(b) for b in subset)
        value_t = validate_value_bits(value)
        if len(subset_t) != len(value_t):
            raise ValueError(
                f"subset and value must have equal length, got "
                f"{len(subset_t)} and {len(value_t)}"
            )
        if len(keys) == 0:
            return np.zeros(0, dtype=np.int8)
        head = _payload_prefix(user_id, subset_t) + _payload_value(value_t)
        base = hashlib.blake2b(head, key=self.global_key, digest_size=8)
        copy = base.copy
        buffer = bytearray()
        for key in keys:
            state = copy()
            state.update(_payload_suffix(int(key)))
            buffer += state.digest()
        words = np.frombuffer(buffer, dtype=">u8").astype(np.uint64)
        return (words < np.uint64(self._threshold)).astype(np.int8)

    def _uniform64(self, payload: bytes) -> int:
        digest = hashlib.blake2b(payload, key=self.global_key, digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _uniform64_block(
        self,
        prefixes: Sequence[bytes],
        middles: Sequence[bytes],
        suffixes: Sequence[bytes],
    ) -> np.ndarray:
        # The keyed state after absorbing a user's prefix is shared by all
        # V candidate values: hash the prefix once, then copy() per value —
        # BLAKE2b is a stream, so copying the state and absorbing the
        # spliced tail yields exactly the digest of the full payload.  The
        # digests accumulate in one bytearray and decode in one shot as a
        # big-endian uint64 vector, matching int.from_bytes(digest, "big")
        # per entry.
        blake2b = hashlib.blake2b
        key = self.global_key
        buffer = bytearray()
        for prefix, suffix in zip(prefixes, suffixes):
            base = blake2b(prefix, key=key, digest_size=8)
            copy = base.copy
            for middle in middles:
                state = copy()
                state.update(middle + suffix)
                buffer += state.digest()
        return np.frombuffer(buffer, dtype=">u8").astype(np.uint64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BiasedPRF(p={self.p}, key=<{len(self.global_key)} bytes>)"


class CounterPRF(BiasedFunction):
    """The vectorised construction: keyed BLAKE2b subkeys + counter-mode Philox.

    Where :class:`BiasedPRF` pays one Python-level hash call per
    ``(value, key)`` point, this backend hashes only once per ``(id, B)``:

    1. **subkey** — a single keyed BLAKE2b call over the canonical
       ``id | B`` prefix (domain-separated with a BLAKE2b
       personalisation string) yields a 128-bit subkey;
    2. **expansion** — every point ``(v, s)`` maps to a fixed
       Philox4x64-10 counter under that subkey (``c0 = v_int >> 2``,
       ``c1 = s``, output word ``v_int & 3``, where ``v_int`` is the
       candidate value read MSB-first), so a whole ``V x K`` block of
       uniform64 words evaluates as one NumPy array pass — zero
       per-point Python (see :mod:`repro.core.philox`);
    3. **threshold** — the usual comparison against ``floor(p * 2**64)``.

    Steps 2–3 are served by the **kernel tier**
    (:mod:`repro.core.kernels`): a GIL-releasing fused C pass when the
    compiled extension is built, the NumPy array-arithmetic twin
    otherwise — the two are bit-identical and selection never changes
    any output.

    This is still a PRF under standard assumptions: the BLAKE2b step is a
    PRF from ``(id, B)`` to subkeys, and Philox keyed by a uniform
    128-bit key is a counter-mode PRF over the ``(v, s)`` index space
    (Philox4x64-10 is the full-strength Random123 parameterisation that
    backs ``numpy.random.Philox``, against which the implementation is
    pinned bitwise).  Outputs are deterministic and bitwise-reproducible
    across processes and platforms.

    It is a **different function** from :class:`BiasedPRF` under the same
    global key — sketches collected under one backend must be queried
    under the same backend, and the evaluation cache keys directories by
    :attr:`algorithm` so the two can never poison each other's entries.

    Packing ``v_int`` into one counter word bounds the supported query
    width at 62 bits per subset — far beyond the paper's regime (and the
    engine's own 12-bit marginal guard); wider subsets raise
    ``ValueError``.
    """

    stateless = True
    algorithm = "counter"

    #: BLAKE2b personalisation for the subkey derivation — domain-separates
    #: subkeys from every other keyed BLAKE2b use of the same global key.
    _PERSON = b"repro-ctr-prf-v1"

    _MAX_WIDTH = 62

    def __init__(self, p: float, global_key: bytes | None = None) -> None:
        super().__init__(p)
        if global_key is None:
            global_key = secrets.token_bytes(32)
        if not 16 <= len(global_key) <= 64:
            raise ValueError(
                f"global_key must be 16-64 bytes for keyed BLAKE2b, got {len(global_key)}"
            )
        self.global_key = global_key
        # The keyed, personalised state is constant; per-subkey calls
        # copy() it and absorb the (id, B) prefix.
        self._subkey_base = hashlib.blake2b(
            key=global_key, digest_size=16, person=self._PERSON
        )

    # ------------------------------------------------------------------
    # Construction internals
    # ------------------------------------------------------------------
    def _subkey(self, user_id: str, subset: Tuple[int, ...]) -> Tuple[int, int]:
        """The per-``(id, B)`` 128-bit Philox key, as two uint64 words."""
        state = self._subkey_base.copy()
        state.update(_payload_prefix(user_id, subset))
        digest = state.digest()
        return (
            int.from_bytes(digest[:8], "little"),
            int.from_bytes(digest[8:], "little"),
        )

    def _subkey_columns(
        self, user_ids: Sequence[str], subset: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-user subkey word columns — the bulk form of :meth:`_subkey`.

        One keyed BLAKE2b call per user is the construction's entire
        Python-level hashing bill; the constant ``|B|`` tail of the
        canonical prefix is built once and the digests decode in one
        ``frombuffer`` pass, byte-identical to looping :meth:`_subkey`.
        """
        subset_length = len(subset)
        tail = _subset_blob(subset)
        copy = self._subkey_base.copy
        buffer = bytearray()
        for user_id in user_ids:
            state = copy()
            state.update(_prefix_head(user_id, subset_length) + tail)
            buffer += state.digest()
        words = np.frombuffer(bytes(buffer), dtype="<u8").reshape(-1, 2)
        return np.ascontiguousarray(words[:, 0]), np.ascontiguousarray(words[:, 1])

    def _value_int(self, subset_t: Tuple[int, ...], value: Sequence[int]) -> int:
        """The candidate value as an MSB-first integer counter coordinate."""
        value_t = validate_value_bits(value)
        if len(value_t) != len(subset_t):
            raise ValueError(
                f"subset and value must have equal length, got "
                f"{len(subset_t)} and {len(value_t)}"
            )
        if len(value_t) > self._MAX_WIDTH:
            raise ValueError(
                f"CounterPRF packs the candidate value into one counter word "
                f"and supports at most {self._MAX_WIDTH}-bit subsets, got "
                f"{len(value_t)}"
            )
        out = 0
        for bit in value_t:
            out = (out << 1) | bit
        return out

    def _words(self, c0, c1, k0, k1) -> Tuple[np.ndarray, ...]:
        """Philox output block at ``(c0, c1, 0, 0)`` under ``(k0, k1)``."""
        zero = np.uint64(0)
        return philox4x64(c0, c1, zero, zero, k0, k1)

    # ------------------------------------------------------------------
    # BiasedFunction interface
    # ------------------------------------------------------------------
    def evaluate(
        self,
        user_id: str,
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        key: int,
    ) -> int:
        subset_t = tuple(int(b) for b in subset)
        v_int = self._value_int(subset_t, value)
        k0, k1 = self._subkey(str(user_id), subset_t)
        bits = kernels.threshold_keys(
            v_int >> 2,
            np.array([int(key)], dtype=np.uint64),
            k0,
            k1,
            v_int & 3,
            self._threshold,
        )
        return int(bits[0])

    def _uniform64(self, payload: bytes) -> int:
        """Structured evaluation of a spliced canonical payload.

        The base-class fallback paths hand this method full
        :func:`encode_input` payloads; the encoding is injective and
        length-prefixed, so it parses back into ``(id, B, v, s)`` and the
        counter construction evaluates the same point the vector paths
        would — byte layout in, bitwise-identical word out.
        """
        user_id, subset_t, value_t, key = _parse_payload(payload)
        v_int = self._value_int(subset_t, value_t)
        k0, k1 = self._subkey(user_id, subset_t)
        words = self._words(
            np.uint64(v_int >> 2), np.uint64(key), np.uint64(k0), np.uint64(k1)
        )
        return int(words[v_int & 3])

    def evaluate_keys(
        self,
        user_id: str,
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        keys: Sequence[int],
    ) -> np.ndarray:
        subset_t = tuple(int(b) for b in subset)
        v_int = self._value_int(subset_t, value)
        if len(keys) == 0:
            return np.zeros(0, dtype=np.int8)
        k0, k1 = self._subkey(str(user_id), subset_t)
        key_array = np.fromiter((int(k) for k in keys), dtype=np.uint64)
        return kernels.threshold_keys(
            v_int >> 2, key_array, k0, k1, v_int & 3, self._threshold
        )

    def evaluate_block(
        self,
        user_ids: Iterable[str],
        subset: Tuple[int, ...],
        values: Sequence[Tuple[int, ...]],
        keys: Iterable[int],
    ) -> np.ndarray:
        users = [str(uid) for uid in user_ids]
        key_array = np.fromiter((int(k) for k in keys), dtype=np.uint64)
        if len(users) != key_array.size:
            raise ValueError(
                f"user_ids and keys must align, got {len(users)} and {key_array.size}"
            )
        subset_t = tuple(int(b) for b in subset)
        v_ints = np.array(
            [self._value_int(subset_t, value) for value in values], dtype=np.uint64
        )
        num_users, num_values = len(users), v_ints.size
        if num_users == 0 or num_values == 0:
            return np.zeros((num_users, num_values), dtype=np.int8)
        # Four consecutive candidate values share one Philox block (the
        # value's two low bits select the output word), so a full marginal
        # costs V/4 blocks per user.
        block_ids, inverse = np.unique(v_ints >> np.uint64(2), return_inverse=True)
        lanes = (v_ints & np.uint64(3)).astype(np.int64)
        num_blocks = block_ids.size
        subkey0, subkey1 = self._subkey_columns(users, subset_t)
        # The kernel tier emits the flat lane-interleaved (M, 4B) lattice
        # directly (compiled fused pass or the NumPy twin — bit-identical).
        flat = kernels.threshold_block(
            block_ids, key_array, subkey0, subkey1, self._threshold
        )
        columns = inverse * 4 + lanes
        if num_values == num_blocks * 4 and np.array_equal(
            columns, np.arange(num_values)
        ):
            # Contiguous full-marginal layout — no gather needed.
            return flat
        return flat[:, columns]

    def evaluate_grid(
        self,
        user_ids: Sequence[str],
        subset: Tuple[int, ...],
        values: Sequence[Tuple[int, ...]],
        key_rows: np.ndarray,
    ) -> np.ndarray:
        rows = np.ascontiguousarray(key_rows, dtype=np.uint64)
        if rows.ndim != 2 or len(user_ids) != rows.shape[0] or len(values) != rows.shape[0]:
            raise ValueError(
                f"user_ids ({len(user_ids)}), values ({len(values)}) and key "
                f"rows ({rows.shape}) must align on the user axis"
            )
        subset_t = tuple(int(b) for b in subset)
        num_users, num_keys = rows.shape
        if num_users == 0 or num_keys == 0:
            return np.zeros((num_users, num_keys), dtype=np.int8)
        v_ints = np.array(
            [self._value_int(subset_t, value) for value in values], dtype=np.uint64
        )
        subkey0, subkey1 = self._subkey_columns([str(uid) for uid in user_ids], subset_t)
        # Each user reads one fixed output lane (their value's two low
        # bits); the kernel tier fuses expansion, lane select and compare.
        return kernels.threshold_grid(
            v_ints >> np.uint64(2),
            v_ints & np.uint64(3),
            rows,
            subkey0,
            subkey1,
            self._threshold,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterPRF(p={self.p}, key=<{len(self.global_key)} bytes>)"


def _parse_payload(payload: bytes) -> Tuple[str, Tuple[int, ...], Tuple[int, ...], int]:
    """Invert :func:`encode_input` (possible because the encoding is injective)."""
    try:
        id_length = int.from_bytes(payload[0:4], "big")
        subset_length = int.from_bytes(payload[4:8], "big")
        cursor = 8
        # The header records the id's *character* count; its utf-8 byte
        # span is found by decoding forward until that many characters
        # have been consumed (multi-byte characters span 2-4 bytes).
        characters = []
        while len(characters) < id_length:
            width = 1
            lead = payload[cursor]
            if lead >= 0xF0:
                width = 4
            elif lead >= 0xE0:
                width = 3
            elif lead >= 0xC0:
                width = 2
            characters.append(payload[cursor : cursor + width].decode("utf-8"))
            cursor += width
        user_id = "".join(characters)
        if payload[cursor : cursor + 3] != b"|B|":
            raise ValueError("missing |B| separator")
        cursor += 3
        subset = tuple(
            int.from_bytes(payload[cursor + 4 * i : cursor + 4 * i + 4], "big")
            for i in range(subset_length)
        )
        cursor += 4 * subset_length
        if payload[cursor : cursor + 3] != b"|v|":
            raise ValueError("missing |v| separator")
        cursor += 3
        value = tuple(payload[cursor : cursor + subset_length])
        cursor += subset_length
        if payload[cursor : cursor + 3] != b"|s|":
            raise ValueError("missing |s| separator")
        cursor += 3
        key_bytes = payload[cursor : cursor + 8]
        if len(key_bytes) != 8 or cursor + 8 != len(payload):
            raise ValueError("truncated or oversized key tail")
        return user_id, subset, value, int.from_bytes(key_bytes, "big")
    except (IndexError, UnicodeDecodeError) as exc:
        raise ValueError(f"not a canonical H payload: {exc}") from exc


def public_prf_meta(prf: BiasedFunction) -> dict:
    """The *public* part of a PRF's identity: construction + bias, never
    the key.

    Serializers record this in file headers so a consumer knows which
    backend to rebuild — querying under the wrong construction silently
    mis-de-biases every estimate, exactly as a wrong global key would.
    """
    return {"algorithm": prf.algorithm, "p": float(prf.p)}


def prf_from_spec(spec: dict) -> BiasedFunction:
    """Rebuild a stateless PRF from its :meth:`BiasedFunction.spec`.

    The inverse used by pool workers (the sharded collector ships the spec
    instead of a pickled instance) and by consumers of serialized
    metadata.  Unknown algorithms raise ``ValueError`` — a store collected
    under a construction this build does not implement must not be
    silently evaluated under a different one.
    """
    try:
        algorithm = spec["algorithm"]
        p = float(spec["p"])
        global_key = bytes.fromhex(spec["global_key"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed PRF spec {spec!r}: {exc}") from exc
    backends = {BiasedPRF.algorithm: BiasedPRF, CounterPRF.algorithm: CounterPRF}
    if algorithm not in backends:
        raise ValueError(
            f"unknown PRF algorithm {algorithm!r}; this build implements "
            f"{sorted(backends)}"
        )
    return backends[algorithm](p=p, global_key=global_key)


class TrueRandomOracle(BiasedFunction):
    """A lazily-sampled truly random function, for analysis and tests.

    Mirrors the paper's proof device: "think about a pseudorandom function as
    a black box such that for every set of parameters for which we have not
    yet evaluated our function, the value is generated randomly on the fly".
    Evaluations are memoised so the function stays a *function* (repeated
    queries agree), which several proofs rely on.
    """

    algorithm = "oracle"

    def __init__(self, p: float, rng: np.random.Generator | None = None) -> None:
        super().__init__(p)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._table: Dict[bytes, int] = {}

    def _uniform64(self, payload: bytes) -> int:
        cached = self._table.get(payload)
        if cached is None:
            cached = int(self._rng.integers(0, _SCALE, dtype=np.uint64))
            self._table[payload] = cached
        return cached

    def _uniform64_block(
        self,
        prefixes: Sequence[bytes],
        middles: Sequence[bytes],
        suffixes: Sequence[bytes],
    ) -> np.ndarray:
        # Block-aware memoised path: splice each payload once and consult
        # the table directly, sampling misses in payload order with the
        # same per-point draw the scalar path would make — so mixing
        # evaluate() and evaluate_block() in any order stays consistent.
        table = self._table
        rng_integers = self._rng.integers
        out = np.empty(len(prefixes) * len(middles), dtype=np.uint64)
        index = 0
        for prefix, suffix in zip(prefixes, suffixes):
            for middle in middles:
                payload = prefix + middle + suffix
                cached = table.get(payload)
                if cached is None:
                    cached = int(rng_integers(0, _SCALE, dtype=np.uint64))
                    table[payload] = cached
                out[index] = cached
                index += 1
        return out

    @property
    def num_evaluations(self) -> int:
        """Number of distinct points at which the oracle has been evaluated."""
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrueRandomOracle(p={self.p}, evaluated={len(self._table)})"
