"""The public pseudorandom p-biased function ``H``.

Section 3 of the paper assumes a public pseudorandom function

    ``H(id, B, v, s) -> {0, 1}``   with   ``Pr[H(...) = 1] = p``

at any fresh input, all evaluations mutually independent.  The paper builds
it from any collision-free hash (it names MD5 and WHIRLPOOL) via the
threshold trick: interpret the hash output ``v_1 ... v_lambda`` as the binary
expansion of a real in ``[0, 1)`` and report 1 iff that real is ``<= p``.

We substitute keyed BLAKE2b for MD5 — a strictly stronger primitive available
in the standard library — and implement exactly that threshold comparison on
the first 64 bits of output.  The *global key* corresponds to the paper's
>=300-bit generator key that defines the function for the whole database.

Two implementations share the :class:`BiasedFunction` interface:

* :class:`BiasedPRF` — the real construction (deterministic, keyed hash);
* :class:`TrueRandomOracle` — a lazily-sampled truly random function, used by
  the analysis and test suites to mirror the paper's proof device of
  "assume all values of H were chosen uniformly at random".
"""

from __future__ import annotations

import hashlib
import secrets
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "BiasedFunction",
    "BiasedPRF",
    "TrueRandomOracle",
    "encode_input",
]

# 64 bits of hash output interpreted as a uniform integer; the threshold
# trick compares it against floor(p * 2^64).  Standard hash outputs are
# 128-512 bits — "much larger than the typical precision used to represent
# real values" (paper, footnote 3) — and 64 bits already exceeds double
# precision.
_PRECISION_BITS = 64
_SCALE = 1 << _PRECISION_BITS


def _payload_prefix(user_id: str, subset: Tuple[int, ...]) -> bytes:
    """The ``id | B`` head of the canonical encoding — constant per user.

    The header length-prefixes both variable components, keeping the full
    encoding injective no matter how the three pieces are spliced.
    """
    header = len(user_id).to_bytes(4, "big") + len(subset).to_bytes(4, "big")
    subset_bytes = b"".join(int(b).to_bytes(4, "big") for b in subset)
    return header + user_id.encode("utf-8") + b"|B|" + subset_bytes


def _payload_value(value: Tuple[int, ...]) -> bytes:
    """The ``v`` chunk of the canonical encoding — constant per candidate."""
    return b"|v|" + bytes(int(bit) & 1 for bit in value)


def _payload_suffix(key: int) -> bytes:
    """The ``s`` tail of the canonical encoding — constant per user."""
    return b"|s|" + int(key).to_bytes(8, "big")


def encode_input(user_id: str, subset: Tuple[int, ...], value: Tuple[int, ...], key: int) -> bytes:
    """Canonical byte encoding of an ``H`` input ``(id, B, v, s)``.

    The encoding is injective: each component is length-prefixed so distinct
    tuples can never collide as byte strings.  ``subset`` is the ordered
    tuple of bit positions ``B`` and ``value`` the candidate assignment
    ``v`` (one bit per position).

    The three pieces are built by the same helpers the block evaluator
    splices, so the block path produces byte-identical payloads.
    """
    if len(subset) != len(value):
        raise ValueError(
            f"subset and value must have equal length, got {len(subset)} and {len(value)}"
        )
    return _payload_prefix(user_id, subset) + _payload_value(value) + _payload_suffix(key)


class BiasedFunction(ABC):
    """Interface of the public p-biased function ``H``.

    Class attribute ``stateless`` declares whether evaluations are pure
    functions of the payload with no observable internal state.  A
    stateless function may be evaluated *speculatively* (a chunk of
    candidate keys ahead of Algorithm 1's stopping point) and *in other
    processes* (sharded collection) without changing any result.  The
    deployed :class:`BiasedPRF` is stateless; the memoising
    :class:`TrueRandomOracle` is not — its lazily-sampled table depends on
    the exact draw order, which extra or out-of-process evaluations would
    perturb.
    """

    #: Whether evaluations are pure in the payload (see class docstring).
    stateless: bool = False

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"bias p must be in (0,1), got {p}")
        self.p = p
        self._threshold = int(p * _SCALE)

    @abstractmethod
    def _uniform64(self, payload: bytes) -> int:
        """Return a 64-bit integer that is (pseudo)uniform in the payload."""

    def evaluate(
        self,
        user_id: str,
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        key: int,
    ) -> int:
        """Evaluate ``H(id, B, v, s)`` — 1 with probability ``p``.

        The comparison ``uniform < floor(p * 2^64)`` realises the paper's
        binary-expansion threshold: for a uniform 64-bit word the result is 1
        with probability within ``2^-64`` of ``p``.
        """
        payload = encode_input(user_id, subset, value, key)
        return 1 if self._uniform64(payload) < self._threshold else 0

    def evaluate_many(
        self,
        user_ids: Iterable[str],
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        keys: Iterable[int],
    ) -> np.ndarray:
        """Vector of ``H(id_u, B, v, s_u)`` over aligned users and keys.

        This is the aggregator-side bulk evaluation used by Algorithm 2:
        one evaluation per user at the *query* value ``v`` with that user's
        published key.  A single-column :meth:`evaluate_block`, and bitwise
        identical to looping :meth:`evaluate`.
        """
        return self.evaluate_block(user_ids, subset, [value], keys)[:, 0]

    def evaluate_keys(
        self,
        user_id: str,
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        keys: Sequence[int],
    ) -> np.ndarray:
        """``(K,)`` int8 vector of ``H(id, B, v, s_k)`` over candidate keys.

        The *user-side* chunk primitive: Algorithm 1's rejection loop
        evaluates the true value ``d_B`` at a run of candidate keys, so
        here one ``(id, B, v)`` head is shared by every key.  Payloads are
        built in key order and fed through the scalar :meth:`_uniform64`,
        which keeps memoising implementations (the random oracle) sampling
        in exactly the order a scalar loop would; :class:`BiasedPRF`
        overrides this with a hash-state-copy fast path.  Bitwise
        identical to looping :meth:`evaluate`.
        """
        subset_t = tuple(int(b) for b in subset)
        value_t = tuple(int(bit) for bit in value)
        if len(subset_t) != len(value_t):
            raise ValueError(
                f"subset and value must have equal length, got "
                f"{len(subset_t)} and {len(value_t)}"
            )
        head = _payload_prefix(user_id, subset_t) + _payload_value(value_t)
        uniform = self._uniform64
        threshold = self._threshold
        out = np.empty(len(keys), dtype=np.int8)
        for index, key in enumerate(keys):
            out[index] = 1 if uniform(head + _payload_suffix(int(key))) < threshold else 0
        return out

    def evaluate_block(
        self,
        user_ids: Iterable[str],
        subset: Tuple[int, ...],
        values: Sequence[Tuple[int, ...]],
        keys: Iterable[int],
    ) -> np.ndarray:
        """``(M, V)`` int8 matrix of ``H(id_u, B, v_j, s_u)``.

        The aggregator's batched hot path: every candidate value of a
        full-marginal or plan-group query against every user's published
        key in one call.  The per-user payload prefix (``id | B`` header)
        and suffix (``| s``) are built once per user and the per-value
        chunk once per value; each of the ``M * V`` evaluations is then a
        cheap splice instead of a full :func:`encode_input`, and the
        threshold comparison is vectorised over a uint64 array.  The
        result equals ``evaluate`` at every ``(u, j)`` bit for bit.
        """
        users = [str(uid) for uid in user_ids]
        key_list = [int(k) for k in keys]
        if len(users) != len(key_list):
            raise ValueError(
                f"user_ids and keys must align, got {len(users)} and {len(key_list)}"
            )
        subset_t = tuple(int(b) for b in subset)
        value_ts = [tuple(int(bit) for bit in v) for v in values]
        for value_t in value_ts:
            if len(value_t) != len(subset_t):
                raise ValueError(
                    f"subset and value must have equal length, got "
                    f"{len(subset_t)} and {len(value_t)}"
                )
        num_users, num_values = len(users), len(value_ts)
        if num_users == 0 or num_values == 0:
            return np.zeros((num_users, num_values), dtype=np.int8)
        prefixes = [_payload_prefix(uid, subset_t) for uid in users]
        middles = [_payload_value(value_t) for value_t in value_ts]
        suffixes = [_payload_suffix(key) for key in key_list]
        words = self._uniform64_block(prefixes, middles, suffixes)
        bits = words < np.uint64(self._threshold)
        return bits.astype(np.int8).reshape(num_users, num_values)

    def _uniform64_block(
        self,
        prefixes: Sequence[bytes],
        middles: Sequence[bytes],
        suffixes: Sequence[bytes],
    ) -> np.ndarray:
        """Row-major ``(len(prefixes) * len(middles),)`` uint64 vector.

        ``prefixes`` and ``suffixes`` are user-aligned; ``middles`` hold
        the per-value chunks.  The default splices each payload and defers
        to :meth:`_uniform64`, which keeps memoising implementations (the
        random oracle) consistent with their scalar path; subclasses with
        a cheaper bulk primitive override it.
        """
        uniform = self._uniform64
        out = np.empty(len(prefixes) * len(middles), dtype=np.uint64)
        index = 0
        for prefix, suffix in zip(prefixes, suffixes):
            for middle in middles:
                out[index] = uniform(prefix + middle + suffix)
                index += 1
        return out


class BiasedPRF(BiasedFunction):
    """The deployed construction: keyed BLAKE2b + threshold trick.

    Parameters
    ----------
    p:
        Bias towards 1 at a random input.
    global_key:
        The database-wide generator key (paper: ">= 300 bits is more than
        sufficient").  Defaults to a fresh 32-byte (256-bit) random key; pass
        an explicit key to make a whole deployment reproducible.  BLAKE2b
        accepts keys up to 64 bytes, so a 300+ bit key is supported directly.
    """

    stateless = True

    def __init__(self, p: float, global_key: bytes | None = None) -> None:
        super().__init__(p)
        if global_key is None:
            global_key = secrets.token_bytes(32)
        if not 16 <= len(global_key) <= 64:
            raise ValueError(
                f"global_key must be 16-64 bytes for keyed BLAKE2b, got {len(global_key)}"
            )
        self.global_key = global_key

    def evaluate_keys(
        self,
        user_id: str,
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        keys: Sequence[int],
    ) -> np.ndarray:
        # The (id, B, v) head is shared by every candidate key: absorb it
        # into one keyed BLAKE2b state, then copy() per key and splice the
        # suffix — the same stream-state trick evaluate_block plays on the
        # value axis, here on the key axis.
        subset_t = tuple(int(b) for b in subset)
        value_t = tuple(int(bit) for bit in value)
        if len(subset_t) != len(value_t):
            raise ValueError(
                f"subset and value must have equal length, got "
                f"{len(subset_t)} and {len(value_t)}"
            )
        if len(keys) == 0:
            return np.zeros(0, dtype=np.int8)
        head = _payload_prefix(user_id, subset_t) + _payload_value(value_t)
        base = hashlib.blake2b(head, key=self.global_key, digest_size=8)
        copy = base.copy
        buffer = bytearray()
        for key in keys:
            state = copy()
            state.update(_payload_suffix(int(key)))
            buffer += state.digest()
        words = np.frombuffer(buffer, dtype=">u8").astype(np.uint64)
        return (words < np.uint64(self._threshold)).astype(np.int8)

    def _uniform64(self, payload: bytes) -> int:
        digest = hashlib.blake2b(payload, key=self.global_key, digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _uniform64_block(
        self,
        prefixes: Sequence[bytes],
        middles: Sequence[bytes],
        suffixes: Sequence[bytes],
    ) -> np.ndarray:
        # The keyed state after absorbing a user's prefix is shared by all
        # V candidate values: hash the prefix once, then copy() per value —
        # BLAKE2b is a stream, so copying the state and absorbing the
        # spliced tail yields exactly the digest of the full payload.  The
        # digests accumulate in one bytearray and decode in one shot as a
        # big-endian uint64 vector, matching int.from_bytes(digest, "big")
        # per entry.
        blake2b = hashlib.blake2b
        key = self.global_key
        buffer = bytearray()
        for prefix, suffix in zip(prefixes, suffixes):
            base = blake2b(prefix, key=key, digest_size=8)
            copy = base.copy
            for middle in middles:
                state = copy()
                state.update(middle + suffix)
                buffer += state.digest()
        return np.frombuffer(buffer, dtype=">u8").astype(np.uint64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BiasedPRF(p={self.p}, key=<{len(self.global_key)} bytes>)"


class TrueRandomOracle(BiasedFunction):
    """A lazily-sampled truly random function, for analysis and tests.

    Mirrors the paper's proof device: "think about a pseudorandom function as
    a black box such that for every set of parameters for which we have not
    yet evaluated our function, the value is generated randomly on the fly".
    Evaluations are memoised so the function stays a *function* (repeated
    queries agree), which several proofs rely on.
    """

    def __init__(self, p: float, rng: np.random.Generator | None = None) -> None:
        super().__init__(p)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._table: Dict[bytes, int] = {}

    def _uniform64(self, payload: bytes) -> int:
        cached = self._table.get(payload)
        if cached is None:
            cached = int(self._rng.integers(0, _SCALE, dtype=np.uint64))
            self._table[payload] = cached
        return cached

    def _uniform64_block(
        self,
        prefixes: Sequence[bytes],
        middles: Sequence[bytes],
        suffixes: Sequence[bytes],
    ) -> np.ndarray:
        # Block-aware memoised path: splice each payload once and consult
        # the table directly, sampling misses in payload order with the
        # same per-point draw the scalar path would make — so mixing
        # evaluate() and evaluate_block() in any order stays consistent.
        table = self._table
        rng_integers = self._rng.integers
        out = np.empty(len(prefixes) * len(middles), dtype=np.uint64)
        index = 0
        for prefix, suffix in zip(prefixes, suffixes):
            for middle in middles:
                payload = prefix + middle + suffix
                cached = table.get(payload)
                if cached is None:
                    cached = int(rng_integers(0, _SCALE, dtype=np.uint64))
                    table[payload] = cached
                out[index] = cached
                index += 1
        return out

    @property
    def num_evaluations(self) -> int:
        """Number of distinct points at which the oracle has been evaluated."""
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrueRandomOracle(p={self.p}, evaluated={len(self._table)})"
