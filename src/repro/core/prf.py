"""The public pseudorandom p-biased function ``H``.

Section 3 of the paper assumes a public pseudorandom function

    ``H(id, B, v, s) -> {0, 1}``   with   ``Pr[H(...) = 1] = p``

at any fresh input, all evaluations mutually independent.  The paper builds
it from any collision-free hash (it names MD5 and WHIRLPOOL) via the
threshold trick: interpret the hash output ``v_1 ... v_lambda`` as the binary
expansion of a real in ``[0, 1)`` and report 1 iff that real is ``<= p``.

We substitute keyed BLAKE2b for MD5 — a strictly stronger primitive available
in the standard library — and implement exactly that threshold comparison on
the first 64 bits of output.  The *global key* corresponds to the paper's
>=300-bit generator key that defines the function for the whole database.

Two implementations share the :class:`BiasedFunction` interface:

* :class:`BiasedPRF` — the real construction (deterministic, keyed hash);
* :class:`TrueRandomOracle` — a lazily-sampled truly random function, used by
  the analysis and test suites to mirror the paper's proof device of
  "assume all values of H were chosen uniformly at random".
"""

from __future__ import annotations

import hashlib
import secrets
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Tuple

import numpy as np

__all__ = [
    "BiasedFunction",
    "BiasedPRF",
    "TrueRandomOracle",
    "encode_input",
]

# 64 bits of hash output interpreted as a uniform integer; the threshold
# trick compares it against floor(p * 2^64).  Standard hash outputs are
# 128-512 bits — "much larger than the typical precision used to represent
# real values" (paper, footnote 3) — and 64 bits already exceeds double
# precision.
_PRECISION_BITS = 64
_SCALE = 1 << _PRECISION_BITS


def encode_input(user_id: str, subset: Tuple[int, ...], value: Tuple[int, ...], key: int) -> bytes:
    """Canonical byte encoding of an ``H`` input ``(id, B, v, s)``.

    The encoding is injective: each component is length-prefixed so distinct
    tuples can never collide as byte strings.  ``subset`` is the ordered
    tuple of bit positions ``B`` and ``value`` the candidate assignment
    ``v`` (one bit per position).
    """
    if len(subset) != len(value):
        raise ValueError(
            f"subset and value must have equal length, got {len(subset)} and {len(value)}"
        )
    parts = [user_id.encode("utf-8")]
    parts.append(b"|B|")
    parts.extend(int(b).to_bytes(4, "big") for b in subset)
    parts.append(b"|v|")
    parts.append(bytes(int(bit) & 1 for bit in value))
    parts.append(b"|s|")
    parts.append(int(key).to_bytes(8, "big"))
    header = len(user_id).to_bytes(4, "big") + len(subset).to_bytes(4, "big")
    return header + b"".join(parts)


class BiasedFunction(ABC):
    """Interface of the public p-biased function ``H``."""

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"bias p must be in (0,1), got {p}")
        self.p = p
        self._threshold = int(p * _SCALE)

    @abstractmethod
    def _uniform64(self, payload: bytes) -> int:
        """Return a 64-bit integer that is (pseudo)uniform in the payload."""

    def evaluate(
        self,
        user_id: str,
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        key: int,
    ) -> int:
        """Evaluate ``H(id, B, v, s)`` — 1 with probability ``p``.

        The comparison ``uniform < floor(p * 2^64)`` realises the paper's
        binary-expansion threshold: for a uniform 64-bit word the result is 1
        with probability within ``2^-64`` of ``p``.
        """
        payload = encode_input(user_id, subset, value, key)
        return 1 if self._uniform64(payload) < self._threshold else 0

    def evaluate_many(
        self,
        user_ids: Iterable[str],
        subset: Tuple[int, ...],
        value: Tuple[int, ...],
        keys: Iterable[int],
    ) -> np.ndarray:
        """Vector of ``H(id_u, B, v, s_u)`` over aligned users and keys.

        This is the aggregator-side bulk evaluation used by Algorithm 2:
        one evaluation per user at the *query* value ``v`` with that user's
        published key.
        """
        out = [
            self.evaluate(uid, subset, value, key)
            for uid, key in zip(user_ids, keys, strict=True)
        ]
        return np.asarray(out, dtype=np.int8)


class BiasedPRF(BiasedFunction):
    """The deployed construction: keyed BLAKE2b + threshold trick.

    Parameters
    ----------
    p:
        Bias towards 1 at a random input.
    global_key:
        The database-wide generator key (paper: ">= 300 bits is more than
        sufficient").  Defaults to a fresh 32-byte (256-bit) random key; pass
        an explicit key to make a whole deployment reproducible.  BLAKE2b
        accepts keys up to 64 bytes, so a 300+ bit key is supported directly.
    """

    def __init__(self, p: float, global_key: bytes | None = None) -> None:
        super().__init__(p)
        if global_key is None:
            global_key = secrets.token_bytes(32)
        if not 16 <= len(global_key) <= 64:
            raise ValueError(
                f"global_key must be 16-64 bytes for keyed BLAKE2b, got {len(global_key)}"
            )
        self.global_key = global_key

    def _uniform64(self, payload: bytes) -> int:
        digest = hashlib.blake2b(payload, key=self.global_key, digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BiasedPRF(p={self.p}, key=<{len(self.global_key)} bytes>)"


class TrueRandomOracle(BiasedFunction):
    """A lazily-sampled truly random function, for analysis and tests.

    Mirrors the paper's proof device: "think about a pseudorandom function as
    a black box such that for every set of parameters for which we have not
    yet evaluated our function, the value is generated randomly on the fly".
    Evaluations are memoised so the function stays a *function* (repeated
    queries agree), which several proofs rely on.
    """

    def __init__(self, p: float, rng: np.random.Generator | None = None) -> None:
        super().__init__(p)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._table: Dict[bytes, int] = {}

    def _uniform64(self, payload: bytes) -> int:
        cached = self._table.get(payload)
        if cached is None:
            cached = int(self._rng.integers(0, _SCALE, dtype=np.uint64))
            self._table[payload] = cached
        return cached

    @property
    def num_evaluations(self) -> int:
        """Number of distinct points at which the oracle has been evaluated."""
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrueRandomOracle(p={self.p}, evaluated={len(self._table)})"
