"""Privacy accounting across multiple sketch releases (Corollary 3.4).

Every sketch a user publishes multiplies the worst-case distinguishing ratio
by ``((1-p)/p)**4``.  A deployment that wants an overall ``(1 ± eps)``
guarantee must therefore either cap the number of sketches per user or pick
``p`` close enough to 1/2 up front: ``p >= 1/2 - eps/(16 l)`` suffices for
``l`` sketches (Corollary 3.4).

:class:`PrivacyAccountant` is the bookkeeping object a collector uses to
enforce this: it records releases per user and refuses any release that
would push the user's cumulative ratio past the budget.  The accounting is
worst-case and composition is simple multiplication, exactly as in the
paper ("conditioned on a profile, each sketch is generated independently").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .params import PrivacyParams

__all__ = [
    "BudgetExceeded",
    "ReleaseRecord",
    "PrivacyAccountant",
    "RelaxedPrivacyAccountant",
]


class BudgetExceeded(RuntimeError):
    """Raised when a sketch release would exceed a user's privacy budget."""


@dataclass
class ReleaseRecord:
    """Per-user ledger entry.

    Attributes
    ----------
    num_sketches:
        Sketches released so far.
    ratio:
        Cumulative worst-case distinguishing ratio
        ``((1-p)/p)**(4 * num_sketches)``.
    """

    num_sketches: int = 0
    ratio: float = 1.0


@dataclass
class PrivacyAccountant:
    """Worst-case multiplicative privacy ledger.

    Parameters
    ----------
    params:
        Privacy parameters in force for every release.
    epsilon:
        Total budget: each user's cumulative ratio must stay at most
        ``1 + epsilon``.

    Examples
    --------
    >>> params = PrivacyParams.from_epsilon(0.5, num_sketches=4)
    >>> accountant = PrivacyAccountant(params, epsilon=0.5)
    >>> accountant.max_sketches >= 4
    True
    """

    params: PrivacyParams
    epsilon: float
    _ledger: Dict[str, ReleaseRecord] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")

    @property
    def per_sketch_ratio(self) -> float:
        """The ratio one release costs: ``((1-p)/p)**4`` (Lemma 3.3)."""
        return self.params.privacy_ratio_bound(num_sketches=1)

    @property
    def max_sketches(self) -> int:
        """Largest ``l`` with ``((1-p)/p)**(4 l) <= 1 + epsilon``.

        Zero when even a single sketch blows the budget (i.e. ``p`` is too
        far from 1/2 for the requested ``epsilon``).
        """
        import math

        per_release = 4.0 * math.log((1.0 - self.params.p) / self.params.p)
        if per_release <= 0:  # pragma: no cover - p < 1/2 enforced upstream
            return 1 << 30
        return int(math.log(1.0 + self.epsilon) / per_release)

    def spent(self, user_id: str) -> ReleaseRecord:
        """Current ledger entry for a user (zero-release default)."""
        return self._ledger.get(user_id, ReleaseRecord())

    def remaining_sketches(self, user_id: str) -> int:
        """How many more sketches the user may release within budget."""
        return max(0, self.max_sketches - self.spent(user_id).num_sketches)

    def can_release(self, user_id: str, count: int = 1) -> bool:
        """Whether ``count`` further releases fit in the user's budget."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return self.remaining_sketches(user_id) >= count

    def charge(self, user_id: str, count: int = 1) -> ReleaseRecord:
        """Record ``count`` releases for ``user_id``.

        Raises
        ------
        BudgetExceeded
            If the releases would push the cumulative ratio past
            ``1 + epsilon``.  The ledger is left unchanged in that case.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if not self.can_release(user_id, count):
            record = self.spent(user_id)
            raise BudgetExceeded(
                f"user {user_id!r} has released {record.num_sketches} sketches; "
                f"{count} more would exceed the budget of {self.max_sketches} "
                f"(epsilon={self.epsilon}, p={self.params.p})"
            )
        record = self._ledger.setdefault(user_id, ReleaseRecord())
        record.num_sketches += count
        record.ratio = self.params.privacy_ratio_bound(record.num_sketches)
        return record


@dataclass
class RelaxedPrivacyAccountant:
    """Section 5's relaxed budget: quadratically more sketches, w.h.p.

    The conclusions note that "if one is willing to relax privacy
    guarantees from deterministic to negligibly small probability of leak
    then the result of Theorem [Corollary] 3.4 can be improved to allow
    quadratically more sketches while giving essentially the same privacy
    guarantees."

    The mechanism behind the remark: the log likelihood-ratio contributed
    by one sketch is bounded by ``b = 4 ln((1-p)/p)`` in magnitude but has
    mean zero under either hypothesis up to O(b^2) (the publish
    distributions are within e^{±b} of each other and normalised), so the
    sum over ``l`` independent sketches concentrates around O(b sqrt(l))
    instead of the worst-case ``b l``.  Azuma-Hoeffding gives

        ``Pr[ |sum| > eps ] <= 2 exp(-eps^2 / (2 l b^2))``

    so requiring this to be at most ``delta`` allows

        ``l <= eps^2 / (2 b^2 ln(2/delta))``

    sketches — quadratic in ``eps/b`` where the deterministic ledger of
    :class:`PrivacyAccountant` allows only ``eps/b`` (for small ``eps``).

    This accountant is strictly weaker than the deterministic one: with
    probability up to ``delta`` (over the user's own coins and the public
    function) the realised leakage may exceed ``eps``.  Use it only where
    the paper's remark applies — e.g. high-sketch-count telemetry where a
    negligible ``delta`` is acceptable.
    """

    params: PrivacyParams
    epsilon: float
    delta: float
    _ledger: Dict[str, ReleaseRecord] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0,1), got {self.delta}")

    @property
    def per_sketch_log_ratio(self) -> float:
        """The Azuma increment bound ``b = 4 ln((1-p)/p)``."""
        import math

        return 4.0 * math.log((1.0 - self.params.p) / self.params.p)

    @property
    def max_sketches(self) -> int:
        """High-probability capacity ``eps^2 / (2 b^2 ln(2/delta))``.

        Never less than the deterministic ledger's capacity — the relaxed
        bound is only *used* when it helps.
        """
        import math

        b = self.per_sketch_log_ratio
        relaxed = int(self.epsilon**2 / (2.0 * b**2 * math.log(2.0 / self.delta)))
        deterministic = PrivacyAccountant(self.params, self.epsilon).max_sketches
        return max(relaxed, deterministic)

    def spent(self, user_id: str) -> ReleaseRecord:
        return self._ledger.get(user_id, ReleaseRecord())

    def remaining_sketches(self, user_id: str) -> int:
        return max(0, self.max_sketches - self.spent(user_id).num_sketches)

    def can_release(self, user_id: str, count: int = 1) -> bool:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return self.remaining_sketches(user_id) >= count

    def charge(self, user_id: str, count: int = 1) -> ReleaseRecord:
        """Record releases; raises :class:`BudgetExceeded` past capacity."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if not self.can_release(user_id, count):
            record = self.spent(user_id)
            raise BudgetExceeded(
                f"user {user_id!r} has released {record.num_sketches} sketches; "
                f"{count} more would exceed the relaxed budget of "
                f"{self.max_sketches} (epsilon={self.epsilon}, delta={self.delta})"
            )
        record = self._ledger.setdefault(user_id, ReleaseRecord())
        record.num_sketches += count
        record.ratio = self.params.privacy_ratio_bound(record.num_sketches)
        return record
