"""Privacy parameters for pseudorandom sketches.

The whole construction of Mishra & Sandler (PODS 2006) is driven by a single
bias parameter ``p`` in the open interval ``(0, 1/2)``:

* the public pseudorandom function ``H`` returns 1 with probability ``p``
  at a random input (Section 3);
* Algorithm 1's rejection constant is ``r = (p / (1 - p))**2`` — a key whose
  evaluation is 0 is published with probability ``r`` instead of 1;
* the per-sketch privacy ratio is ``((1 - p) / p)**4`` (Lemma 3.3), and the
  ratio for ``l`` sketches is the fourth power taken ``l`` times
  (Corollary 3.4);
* the de-biasing in Algorithm 2 divides by ``1 - 2p``, so utility degrades as
  ``p`` approaches 1/2.

:class:`PrivacyParams` wraps ``p`` and exposes every derived quantity used
throughout the library, plus the conversions between ``p`` and the ``eps`` of
the paper's :math:`\\epsilon`-privacy definition (Definition 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "PrivacyParams",
    "p_for_epsilon",
    "p_for_epsilon_corollary",
    "epsilon_for_p",
]


def p_for_epsilon(epsilon: float, num_sketches: int = 1) -> float:
    """Return the smallest bias ``p`` giving exactly ``(1+epsilon)``-privacy.

    Inverts the exact multi-sketch ratio of Corollary 3.4:
    ``((1-p)/p)**(4 l) = 1 + epsilon`` solves to
    ``p = 1 / (1 + (1 + epsilon)**(1/(4 l)))``.

    Note: the *paper's* stated sufficient condition
    ``p >= 1/2 - epsilon/(16 l)`` is the first-order Taylor expansion of
    this formula — "the behavior of the exponent of the form
    ``(1 + eps/q)^q ≈ 1 + eps``" — and for any finite ``epsilon`` it
    slightly overshoots the target ratio (e.g. 1.1052 instead of 1.1 at
    ``epsilon = 0.1``, ``l = 1``).  Use
    :func:`p_for_epsilon_corollary` for the paper's literal formula.

    Parameters
    ----------
    epsilon:
        Target privacy slack; must be positive.
    num_sketches:
        Number ``l`` of sketches the user will publish.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if num_sketches < 1:
        raise ValueError(f"num_sketches must be >= 1, got {num_sketches}")
    return 1.0 / (1.0 + (1.0 + epsilon) ** (1.0 / (4.0 * num_sketches)))


def p_for_epsilon_corollary(epsilon: float, num_sketches: int = 1) -> float:
    """The paper's literal Corollary 3.4 condition ``p = 1/2 - eps/(16 l)``.

    First-order approximation of :func:`p_for_epsilon`; kept for the
    reproduction benchmarks that compare the approximation against the
    exact inversion.  For very large ``epsilon`` the formula goes
    non-positive, in which case it is floored just above 0.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if num_sketches < 1:
        raise ValueError(f"num_sketches must be >= 1, got {num_sketches}")
    return max(0.5 - epsilon / (16.0 * num_sketches), 1e-6)


def epsilon_for_p(p: float, num_sketches: int = 1) -> float:
    """Return the exact privacy slack achieved by bias ``p`` over ``l`` sketches.

    This is the *exact* multiplicative bound ``((1-p)/p)**(4 l) - 1`` from
    Lemma 3.3 / Corollary 3.4, not the linearised ``16 l (1/2 - p)``
    approximation used to derive :func:`p_for_epsilon`.
    """
    if not 0.0 < p < 0.5:
        raise ValueError(f"p must lie in (0, 1/2), got {p}")
    if num_sketches < 1:
        raise ValueError(f"num_sketches must be >= 1, got {num_sketches}")
    return ((1.0 - p) / p) ** (4 * num_sketches) - 1.0


@dataclass(frozen=True)
class PrivacyParams:
    """Bias parameter ``p`` plus every derived constant of the construction.

    Parameters
    ----------
    p:
        Bias of the pseudorandom function towards 1 at a random input.
        Must lie strictly inside ``(0, 1/2)``: at ``p = 1/2`` the sketch is
        perfectly private but carries no information (Section 2's coin-flip
        discussion), and at ``p = 0`` a sketch trivially reveals ``d_B``.

    Examples
    --------
    >>> params = PrivacyParams(p=0.25)
    >>> round(params.rejection_probability, 4)
    0.1111
    >>> round(params.privacy_ratio_bound(), 0)
    81.0
    """

    p: float

    def __post_init__(self) -> None:
        if not 0.0 < self.p < 0.5:
            raise ValueError(
                f"p must lie strictly in (0, 0.5); got {self.p}. "
                "p = 1/2 gives perfect privacy but zero utility, "
                "p = 0 gives zero privacy."
            )

    # ------------------------------------------------------------------
    # Derived constants
    # ------------------------------------------------------------------
    @property
    def q(self) -> float:
        """Probability that ``H`` evaluates to 0 at a random input: ``1 - p``."""
        return 1.0 - self.p

    @property
    def rejection_probability(self) -> float:
        """Algorithm 1 step 5's accept probability ``r = (p / (1-p))**2``.

        A considered key whose evaluation is 0 is published with this
        probability; the squared ratio is exactly what flattens the publish
        distribution to within ``((1-p)/p)**4`` (Lemma 3.3).
        """
        return (self.p / (1.0 - self.p)) ** 2

    @property
    def debias_denominator(self) -> float:
        """``1 - 2p``, the denominator of Algorithm 2's estimator."""
        return 1.0 - 2.0 * self.p

    @property
    def termination_probability(self) -> float:
        """Per-iteration stop probability of Algorithm 1.

        Each considered key stops the loop with probability
        ``p + (1-p) * r = p + p^2/(1-p)`` (evaluates to 1, or evaluates to 0
        and the biased accept-coin fires) — the quantity used in the proof of
        Lemma 3.2 and in the expected-running-time remark.
        """
        return self.p + (1.0 - self.p) * self.rejection_probability

    @property
    def expected_iterations(self) -> float:
        """Expected number of iterations of Algorithm 1 (geometric mean).

        The paper upper-bounds this by ``(1-p)^2 / p^2`` (Section 3); the
        exact value for sampling *with* replacement is
        ``1 / termination_probability``, and without replacement it can only
        be smaller.
        """
        return 1.0 / self.termination_probability

    @property
    def iteration_bound(self) -> float:
        """The paper's stated bound ``(1-p)^2 / p^2`` on expected iterations."""
        return ((1.0 - self.p) / self.p) ** 2

    # ------------------------------------------------------------------
    # Privacy bounds
    # ------------------------------------------------------------------
    def privacy_ratio_bound(self, num_sketches: int = 1) -> float:
        """Worst-case publish-probability ratio for ``l`` sketches.

        Lemma 3.3 for ``l = 1``; Corollary 3.4 for larger ``l``:
        ``((1-p)/p)**(4 l)``.
        """
        if num_sketches < 1:
            raise ValueError(f"num_sketches must be >= 1, got {num_sketches}")
        return ((1.0 - self.p) / self.p) ** (4 * num_sketches)

    def epsilon(self, num_sketches: int = 1) -> float:
        """Privacy slack ``eps`` such that the ratio is at most ``1 + eps``."""
        return self.privacy_ratio_bound(num_sketches) - 1.0

    # ------------------------------------------------------------------
    # Sketch-length bound (Lemma 3.1)
    # ------------------------------------------------------------------
    def sketch_length(self, num_users: int, failure_prob: float = 1e-6) -> int:
        """Minimum sketch length in bits so Algorithm 1 fails w.p. < tau.

        Lemma 3.1: with ``M`` users and failure budget ``tau``, a length of
        ``ceil( log2( log(tau / M) / log(1 - p^2) ) )`` bits suffices for the
        probability that *any* user's sketching fails to stay below ``tau``.

        Notes
        -----
        The paper writes the bound as ``ceil(log log (M/tau) / |log(1-p^2)|)``
        with the inner ratio under a single log; unwinding the proof, the
        required key count ``L`` satisfies ``(1 - p^2)^L <= tau / M`` i.e.
        ``L >= log(tau/M) / log(1 - p^2)`` and the bit length is
        ``ceil(log2 L)``. That is what we compute.
        """
        if num_users < 1:
            raise ValueError(f"num_users must be >= 1, got {num_users}")
        if not 0.0 < failure_prob < 1.0:
            raise ValueError(f"failure_prob must be in (0,1), got {failure_prob}")
        needed_keys = math.log(failure_prob / num_users) / math.log(1.0 - self.p**2)
        return max(1, math.ceil(math.log2(needed_keys)))

    def failure_probability(self, sketch_bits: int, num_users: int = 1) -> float:
        """Probability that Algorithm 1 exhausts all keys, union-bounded.

        A single run fails with probability at most ``(1 - p^2)**(2**bits)``
        (each considered key stops the run with probability at least
        ``p^2``); the union bound over ``num_users`` scales it linearly.
        """
        if sketch_bits < 1:
            raise ValueError(f"sketch_bits must be >= 1, got {sketch_bits}")
        single = (1.0 - self.p**2) ** (2**sketch_bits)
        return min(1.0, num_users * single)

    # ------------------------------------------------------------------
    # Utility bound (Lemma 4.1)
    # ------------------------------------------------------------------
    def utility_tail(self, error: float, num_users: int) -> float:
        """Chernoff tail bound of Lemma 4.1.

        Probability that Algorithm 2's estimate deviates from the truth by
        more than ``error``: ``exp(-error^2 (1-2p)^2 M / 4)``.
        """
        if error < 0:
            raise ValueError(f"error must be >= 0, got {error}")
        return math.exp(-(error**2) * self.debias_denominator**2 * num_users / 4.0)

    def utility_error(self, num_users: int, delta: float = 0.05) -> float:
        """Error achieved with probability ``1 - delta`` (Lemma 4.1, part 2).

        Inverting the Chernoff tail: ``2 sqrt(log(1/delta) / M) / (1 - 2p)``.
        """
        if num_users < 1:
            raise ValueError(f"num_users must be >= 1, got {num_users}")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        return 2.0 * math.sqrt(math.log(1.0 / delta) / num_users) / self.debias_denominator

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_epsilon(cls, epsilon: float, num_sketches: int = 1) -> "PrivacyParams":
        """Build params guaranteeing ``(1 ± epsilon)``-privacy for ``l`` sketches."""
        return cls(p=p_for_epsilon(epsilon, num_sketches))
