"""The kernel tier: compiled fused CounterPRF hot loop with a NumPy twin.

:class:`~repro.core.prf.CounterPRF`'s bulk entry points all reduce to one
shape of work — Philox4x64-10 expansion at zero-tail counters, a
threshold compare, and an int8 bit out — driven over three layouts (a
key run, a ``(users x blocks)`` lattice, per-user key rows).  This
package serves that shape through one of two interchangeable tiers:

* **c** — the ``_ckernel`` extension (built by ``setup.py``): single
  fused C passes that release the GIL for their whole duration, so
  concurrent queries dispatched to a thread pool genuinely run on
  multiple cores;
* **numpy** — the pre-existing array-arithmetic path over
  :mod:`repro.core.philox`, always available.

Selection order: the compiled tier is used when the extension imports
and the environment does not say otherwise; ``REPRO_KERNEL=numpy``
forces the fallback, ``REPRO_KERNEL=c`` makes a missing extension an
import-time error instead of a silent slowdown (``auto`` — or unset —
is the silent-fallback default).  :func:`select` re-points the tier at
runtime (the CLI's ``--kernel`` flag and the parity tests use it).

The two tiers are **bit-identical**: both implement the exact
Philox4x64-10 parameterisation pinned against ``numpy.random.Philox``,
and the test suite asserts equality across every ``CounterPRF`` entry
point.  Either tier may therefore be picked per process, per run, or
mid-session without touching any persisted artifact — evaluation caches,
stores and wire payloads never record which tier produced them.

Thread-safety: every kernel function is a pure function of its inputs
into a freshly allocated output array — no shared scratch, no module
state mutated after import — so any number of threads may call either
tier concurrently.  (:func:`select` is the one mutator; it is meant for
start-up and tests, not for concurrent use mid-serving.)
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

from ..philox import philox4x64_rows, philox4x64_zero_tail

__all__ = [
    "active",
    "available",
    "select",
    "threshold_keys",
    "threshold_block",
    "threshold_grid",
]

_REQUESTED = (os.environ.get("REPRO_KERNEL") or "auto").strip().lower() or "auto"
if _REQUESTED not in ("auto", "c", "numpy"):
    raise ValueError(
        f"REPRO_KERNEL must be 'auto', 'c' or 'numpy', got {_REQUESTED!r}"
    )

try:  # The extension is optional by contract; the NumPy twin is complete.
    from . import _ckernel  # type: ignore[attr-defined]
except ImportError:
    _ckernel = None
    if _REQUESTED == "c":
        raise ImportError(
            "REPRO_KERNEL=c but the compiled kernel extension is not built; "
            "run 'python setup.py build_ext --inplace' (or unset REPRO_KERNEL "
            "for the NumPy fallback)"
        ) from None

_active = "c" if (_ckernel is not None and _REQUESTED != "numpy") else "numpy"


def available() -> bool:
    """Whether the compiled extension imported in this process."""
    return _ckernel is not None


def active() -> str:
    """The tier currently serving kernel calls: ``"c"`` or ``"numpy"``."""
    return _active


def select(name: str) -> str:
    """Re-point the kernel tier; returns the tier actually active.

    ``"numpy"`` always succeeds; ``"c"`` raises ``RuntimeError`` when the
    extension is missing; ``"auto"`` picks the compiled tier iff built.
    """
    global _active
    if name not in ("auto", "c", "numpy"):
        raise ValueError(f"kernel tier must be 'auto', 'c' or 'numpy', got {name!r}")
    if name == "c" and _ckernel is None:
        raise RuntimeError(
            "compiled kernel extension is not built; run "
            "'python setup.py build_ext --inplace'"
        )
    _active = "numpy" if name == "numpy" or _ckernel is None else "c"
    return _active


# ----------------------------------------------------------------------
# NumPy twin — the pre-existing array-arithmetic path, verbatim.
# ----------------------------------------------------------------------
def _numpy_threshold_keys(
    block: int, keys: np.ndarray, k0: int, k1: int, lane: int, threshold: int
) -> np.ndarray:
    words = philox4x64_zero_tail(
        np.full(keys.size, block, dtype=np.uint64),
        keys,
        np.uint64(k0),
        np.uint64(k1),
    )[lane]
    return (words < np.uint64(threshold)).astype(np.int8)


def _numpy_threshold_block(
    block_ids: np.ndarray,
    user_keys: np.ndarray,
    subkey0: np.ndarray,
    subkey1: np.ndarray,
    threshold: int,
) -> np.ndarray:
    words = philox4x64_rows(
        block_ids[None, :], user_keys[:, None], subkey0, subkey1
    )
    # Threshold-compare each output lane before assembling the value
    # lattice: the interleaved writes then move int8, not uint64.
    bound = np.uint64(threshold)
    lattice = np.empty((user_keys.size, block_ids.size, 4), dtype=np.int8)
    for lane, word in enumerate(words):
        lattice[:, :, lane] = word < bound
    return lattice.reshape(user_keys.size, block_ids.size * 4)


def _numpy_threshold_grid(
    vblocks: np.ndarray,
    lanes: np.ndarray,
    key_rows: np.ndarray,
    subkey0: np.ndarray,
    subkey1: np.ndarray,
    threshold: int,
) -> np.ndarray:
    words = philox4x64_rows(vblocks[:, None], key_rows, subkey0, subkey1)
    # Each user reads one fixed output lane; compare lane-wise first so
    # the gather moves int8.
    bound = np.uint64(threshold)
    num_users, num_keys = key_rows.shape
    lattice = np.empty((num_users, num_keys, 4), dtype=np.int8)
    for lane, word in enumerate(words):
        lattice[:, :, lane] = word < bound
    return np.take_along_axis(
        lattice, lanes.astype(np.int64)[:, None, None], axis=2
    )[:, :, 0]


# ----------------------------------------------------------------------
# Dispatching entry points
# ----------------------------------------------------------------------
def threshold_keys(
    block: int, keys: np.ndarray, k0: int, k1: int, lane: int, threshold: int
) -> np.ndarray:
    """``(K,)`` int8 bits of Philox(block, key_k, subkey)[lane] < threshold."""
    if keys.size == 0:
        return np.zeros(0, dtype=np.int8)
    if _active == "c":
        return _ckernel.threshold_keys(
            int(block), keys, int(k0), int(k1), int(lane), int(threshold)
        )
    return _numpy_threshold_keys(block, keys, k0, k1, lane, threshold)


def threshold_block(
    block_ids: np.ndarray,
    user_keys: np.ndarray,
    subkey0: np.ndarray,
    subkey1: np.ndarray,
    threshold: int,
) -> np.ndarray:
    """``(M, 4B)`` flat lane-interleaved lattice of threshold bits.

    Column ``4b + lane`` holds Philox(block_ids[b], user_keys[m],
    subkey[m])[lane] < threshold — the layout
    :meth:`~repro.core.prf.CounterPRF.evaluate_block` gathers candidate
    columns from.
    """
    if _active == "c":
        return _ckernel.threshold_block(
            block_ids, user_keys, subkey0, subkey1, int(threshold)
        )
    return _numpy_threshold_block(block_ids, user_keys, subkey0, subkey1, threshold)


def threshold_grid(
    vblocks: np.ndarray,
    lanes: np.ndarray,
    key_rows: np.ndarray,
    subkey0: np.ndarray,
    subkey1: np.ndarray,
    threshold: int,
) -> np.ndarray:
    """``(U, K)`` int8 bits, one lane per user row (the grid axis)."""
    if _active == "c":
        return _ckernel.threshold_grid(
            vblocks,
            lanes.astype(np.uint8),
            np.ascontiguousarray(key_rows, dtype=np.uint64),
            subkey0,
            subkey1,
            int(threshold),
        )
    return _numpy_threshold_grid(
        vblocks, lanes, key_rows, subkey0, subkey1, threshold
    )
