/* Fused CounterPRF hot loop as a CPython extension.
 *
 * One function family, three drive shapes — the same three bulk layouts
 * repro/core/philox.py serves with NumPy array arithmetic, here fused
 * into single C passes (Philox4x64-10 expansion -> threshold compare ->
 * int8 bit output) that release the GIL for their whole duration:
 *
 *   threshold_keys  — one (id, B, v) head against a run of candidate
 *                     keys (Algorithm 1's rejection-loop axis);
 *   threshold_block — the (users x blocks) aggregator lattice behind
 *                     evaluate_block, emitted as the flat (M, 4B)
 *                     lane-interleaved layout the gather step consumes;
 *   threshold_grid  — per-user (value, key-run) rows behind
 *                     evaluate_grid and sketch_many.
 *
 * The Philox core is the Random123 / numpy.random.Philox parameterisation
 * (4x64, 10 rounds); Python-side tests pin every entry point bitwise
 * against the NumPy reference path, which is itself pinned against
 * numpy.random.Philox.  uint64 arithmetic wraps identically everywhere,
 * so compiled and NumPy tiers are interchangeable bit for bit.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#include <numpy/arrayobject.h>

#include <stdint.h>

#define PHILOX_M0 0xD2E7470EE14C6C93ULL
#define PHILOX_M1 0xCA5A826395121157ULL
#define PHILOX_W0 0x9E3779B97F4A7C15ULL
#define PHILOX_W1 0xBB67AE8584CAA73BULL
#define PHILOX_ROUNDS 10

/* Philox4x64-10 at counter (c0, c1, 0, 0) — the zero-tail form every
 * hot path uses (their counter layouts never touch the two high words).
 * Matches philox4x64(c0, c1, 0, 0, k0, k1) in repro/core/philox.py:
 * per round, c0..c3 <- (hi1 ^ c1 ^ k0, lo1, hi0 ^ c3 ^ k1, lo0). */
static inline void
philox4x64_10_zero_tail(uint64_t c0, uint64_t c1, uint64_t k0, uint64_t k1,
                        uint64_t out[4])
{
    uint64_t c2 = 0, c3 = 0;
    int r;
    for (r = 0; r < PHILOX_ROUNDS; r++) {
        __uint128_t p0, p1;
        uint64_t lo0, hi0, lo1, hi1, n0, n2;
        if (r) {
            k0 += PHILOX_W0;
            k1 += PHILOX_W1;
        }
        p0 = (__uint128_t)PHILOX_M0 * c0;
        p1 = (__uint128_t)PHILOX_M1 * c2;
        lo0 = (uint64_t)p0;
        hi0 = (uint64_t)(p0 >> 64);
        lo1 = (uint64_t)p1;
        hi1 = (uint64_t)(p1 >> 64);
        n0 = hi1 ^ c1 ^ k0;
        n2 = hi0 ^ c3 ^ k1;
        c1 = lo1;
        c3 = lo0;
        c0 = n0;
        c2 = n2;
    }
    out[0] = c0;
    out[1] = c1;
    out[2] = c2;
    out[3] = c3;
}

/* Fetch a C-contiguous aligned uint64 view of `obj` (new reference). */
static PyArrayObject *
as_u64_array(PyObject *obj, int ndim_required, const char *name)
{
    PyArrayObject *array = (PyArrayObject *)PyArray_FROM_OTF(
        obj, NPY_UINT64, NPY_ARRAY_IN_ARRAY);
    if (array == NULL)
        return NULL;
    if (PyArray_NDIM(array) != ndim_required) {
        PyErr_Format(PyExc_ValueError, "%s must be %d-dimensional, got %d",
                     name, ndim_required, PyArray_NDIM(array));
        Py_DECREF(array);
        return NULL;
    }
    return array;
}

/* threshold_keys(block, keys, k0, k1, lane, threshold) -> int8[K]
 *
 * bits[k] = (philox(block, keys[k], sk)[lane] < threshold). */
static PyObject *
threshold_keys(PyObject *self, PyObject *args)
{
    unsigned long long block, k0, k1, threshold;
    int lane;
    PyObject *keys_obj;
    PyArrayObject *keys, *out;
    npy_intp num_keys;
    const uint64_t *key_data;
    int8_t *out_data;

    (void)self;
    if (!PyArg_ParseTuple(args, "KOKKiK", &block, &keys_obj, &k0, &k1,
                          &lane, &threshold))
        return NULL;
    if (lane < 0 || lane > 3) {
        PyErr_Format(PyExc_ValueError, "lane must be in 0..3, got %d", lane);
        return NULL;
    }
    keys = as_u64_array(keys_obj, 1, "keys");
    if (keys == NULL)
        return NULL;
    num_keys = PyArray_DIM(keys, 0);
    out = (PyArrayObject *)PyArray_SimpleNew(1, &num_keys, NPY_INT8);
    if (out == NULL) {
        Py_DECREF(keys);
        return NULL;
    }
    key_data = (const uint64_t *)PyArray_DATA(keys);
    out_data = (int8_t *)PyArray_DATA(out);
    Py_BEGIN_ALLOW_THREADS
    {
        npy_intp k;
        for (k = 0; k < num_keys; k++) {
            uint64_t words[4];
            philox4x64_10_zero_tail((uint64_t)block, key_data[k],
                                    (uint64_t)k0, (uint64_t)k1, words);
            out_data[k] = words[lane] < (uint64_t)threshold;
        }
    }
    Py_END_ALLOW_THREADS
    Py_DECREF(keys);
    return (PyObject *)out;
}

/* threshold_block(block_ids, user_keys, sk0, sk1, threshold) -> int8[M, 4B]
 *
 * out[m, 4b + lane] = (philox(block_ids[b], user_keys[m], sk[m])[lane]
 *                      < threshold) — the flat lane-interleaved lattice
 * CounterPRF.evaluate_block gathers candidate-value columns from. */
static PyObject *
threshold_block(PyObject *self, PyObject *args)
{
    unsigned long long threshold;
    PyObject *blocks_obj, *keys_obj, *sk0_obj, *sk1_obj;
    PyArrayObject *blocks, *keys, *sk0, *sk1, *out;
    npy_intp num_blocks, num_users, out_dims[2];
    const uint64_t *block_data, *key_data, *sk0_data, *sk1_data;
    int8_t *out_data;

    (void)self;
    if (!PyArg_ParseTuple(args, "OOOOK", &blocks_obj, &keys_obj, &sk0_obj,
                          &sk1_obj, &threshold))
        return NULL;
    blocks = as_u64_array(blocks_obj, 1, "block_ids");
    keys = as_u64_array(keys_obj, 1, "user_keys");
    sk0 = as_u64_array(sk0_obj, 1, "subkey0");
    sk1 = as_u64_array(sk1_obj, 1, "subkey1");
    if (blocks == NULL || keys == NULL || sk0 == NULL || sk1 == NULL)
        goto fail;
    num_blocks = PyArray_DIM(blocks, 0);
    num_users = PyArray_DIM(keys, 0);
    if (PyArray_DIM(sk0, 0) != num_users || PyArray_DIM(sk1, 0) != num_users) {
        PyErr_Format(PyExc_ValueError,
                     "user_keys (%zd), subkey0 (%zd) and subkey1 (%zd) must "
                     "align on the user axis", (Py_ssize_t)num_users,
                     (Py_ssize_t)PyArray_DIM(sk0, 0),
                     (Py_ssize_t)PyArray_DIM(sk1, 0));
        goto fail;
    }
    out_dims[0] = num_users;
    out_dims[1] = num_blocks * 4;
    out = (PyArrayObject *)PyArray_SimpleNew(2, out_dims, NPY_INT8);
    if (out == NULL)
        goto fail;
    block_data = (const uint64_t *)PyArray_DATA(blocks);
    key_data = (const uint64_t *)PyArray_DATA(keys);
    sk0_data = (const uint64_t *)PyArray_DATA(sk0);
    sk1_data = (const uint64_t *)PyArray_DATA(sk1);
    out_data = (int8_t *)PyArray_DATA(out);
    Py_BEGIN_ALLOW_THREADS
    {
        npy_intp m, b;
        for (m = 0; m < num_users; m++) {
            const uint64_t c1 = key_data[m];
            const uint64_t k0 = sk0_data[m];
            const uint64_t k1 = sk1_data[m];
            int8_t *row = out_data + m * num_blocks * 4;
            for (b = 0; b < num_blocks; b++) {
                uint64_t words[4];
                philox4x64_10_zero_tail(block_data[b], c1, k0, k1, words);
                row[4 * b + 0] = words[0] < (uint64_t)threshold;
                row[4 * b + 1] = words[1] < (uint64_t)threshold;
                row[4 * b + 2] = words[2] < (uint64_t)threshold;
                row[4 * b + 3] = words[3] < (uint64_t)threshold;
            }
        }
    }
    Py_END_ALLOW_THREADS
    Py_DECREF(blocks);
    Py_DECREF(keys);
    Py_DECREF(sk0);
    Py_DECREF(sk1);
    return (PyObject *)out;

fail:
    Py_XDECREF(blocks);
    Py_XDECREF(keys);
    Py_XDECREF(sk0);
    Py_XDECREF(sk1);
    return NULL;
}

/* threshold_grid(vblocks, lanes, key_rows, sk0, sk1, threshold) -> int8[U, K]
 *
 * out[u, k] = (philox(vblocks[u], key_rows[u, k], sk[u])[lanes[u]]
 *              < threshold) — each user's own candidate value against
 * that user's run of keys (the sketch_many / evaluate_grid axis). */
static PyObject *
threshold_grid(PyObject *self, PyObject *args)
{
    unsigned long long threshold;
    PyObject *vblocks_obj, *lanes_obj, *rows_obj, *sk0_obj, *sk1_obj;
    PyArrayObject *vblocks, *lanes, *rows, *sk0, *sk1, *out;
    npy_intp num_users, num_keys, out_dims[2];
    const uint64_t *vblock_data, *row_data, *sk0_data, *sk1_data;
    const uint8_t *lane_data;
    int8_t *out_data;

    (void)self;
    if (!PyArg_ParseTuple(args, "OOOOOK", &vblocks_obj, &lanes_obj, &rows_obj,
                          &sk0_obj, &sk1_obj, &threshold))
        return NULL;
    vblocks = as_u64_array(vblocks_obj, 1, "vblocks");
    rows = as_u64_array(rows_obj, 2, "key_rows");
    sk0 = as_u64_array(sk0_obj, 1, "subkey0");
    sk1 = as_u64_array(sk1_obj, 1, "subkey1");
    lanes = (PyArrayObject *)PyArray_FROM_OTF(lanes_obj, NPY_UINT8,
                                              NPY_ARRAY_IN_ARRAY);
    if (vblocks == NULL || rows == NULL || sk0 == NULL || sk1 == NULL ||
        lanes == NULL)
        goto fail;
    if (PyArray_NDIM(lanes) != 1) {
        PyErr_Format(PyExc_ValueError, "lanes must be 1-dimensional, got %d",
                     PyArray_NDIM(lanes));
        goto fail;
    }
    num_users = PyArray_DIM(rows, 0);
    num_keys = PyArray_DIM(rows, 1);
    if (PyArray_DIM(vblocks, 0) != num_users ||
        PyArray_DIM(lanes, 0) != num_users ||
        PyArray_DIM(sk0, 0) != num_users ||
        PyArray_DIM(sk1, 0) != num_users) {
        PyErr_SetString(PyExc_ValueError,
                        "vblocks, lanes, key_rows, subkey0 and subkey1 must "
                        "align on the user axis");
        goto fail;
    }
    {
        npy_intp u;
        lane_data = (const uint8_t *)PyArray_DATA(lanes);
        for (u = 0; u < num_users; u++) {
            if (lane_data[u] > 3) {
                PyErr_Format(PyExc_ValueError,
                             "lanes must be in 0..3, got %d at row %zd",
                             (int)lane_data[u], (Py_ssize_t)u);
                goto fail;
            }
        }
    }
    out_dims[0] = num_users;
    out_dims[1] = num_keys;
    out = (PyArrayObject *)PyArray_SimpleNew(2, out_dims, NPY_INT8);
    if (out == NULL)
        goto fail;
    vblock_data = (const uint64_t *)PyArray_DATA(vblocks);
    row_data = (const uint64_t *)PyArray_DATA(rows);
    sk0_data = (const uint64_t *)PyArray_DATA(sk0);
    sk1_data = (const uint64_t *)PyArray_DATA(sk1);
    out_data = (int8_t *)PyArray_DATA(out);
    Py_BEGIN_ALLOW_THREADS
    {
        npy_intp u, k;
        for (u = 0; u < num_users; u++) {
            const uint64_t c0 = vblock_data[u];
            const uint64_t k0 = sk0_data[u];
            const uint64_t k1 = sk1_data[u];
            const int lane = (int)lane_data[u];
            const uint64_t *row = row_data + u * num_keys;
            int8_t *out_row = out_data + u * num_keys;
            for (k = 0; k < num_keys; k++) {
                uint64_t words[4];
                philox4x64_10_zero_tail(c0, row[k], k0, k1, words);
                out_row[k] = words[lane] < (uint64_t)threshold;
            }
        }
    }
    Py_END_ALLOW_THREADS
    Py_DECREF(vblocks);
    Py_DECREF(lanes);
    Py_DECREF(rows);
    Py_DECREF(sk0);
    Py_DECREF(sk1);
    return (PyObject *)out;

fail:
    Py_XDECREF(vblocks);
    Py_XDECREF(lanes);
    Py_XDECREF(rows);
    Py_XDECREF(sk0);
    Py_XDECREF(sk1);
    return NULL;
}

static PyMethodDef kernel_methods[] = {
    {"threshold_keys", threshold_keys, METH_VARARGS,
     "threshold_keys(block, keys, k0, k1, lane, threshold) -> int8[K]"},
    {"threshold_block", threshold_block, METH_VARARGS,
     "threshold_block(block_ids, user_keys, sk0, sk1, threshold) "
     "-> int8[M, 4B]"},
    {"threshold_grid", threshold_grid, METH_VARARGS,
     "threshold_grid(vblocks, lanes, key_rows, sk0, sk1, threshold) "
     "-> int8[U, K]"},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    "_ckernel",
    "GIL-releasing fused Philox4x64-10 threshold kernels.",
    -1,
    kernel_methods,
    NULL, NULL, NULL, NULL
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *module = PyModule_Create(&ckernel_module);
    if (module == NULL)
        return NULL;
    import_array();
    if (PyErr_Occurred()) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
