"""Exact analysis of Algorithm 1's publish distribution (Lemma 3.3).

Lemma 3.3 bounds the ratio ``Pr[publish s | d'] / Pr[publish s | d'']`` by
``((1-p)/p)**4`` *for any fixed assignment of the public function's values*,
with probability taken only over the user's private coins (the random key
order and the accept coin).  This module computes those publish
probabilities **exactly**, so the benchmark suite can verify the bound is
respected — and find how tight it is — without Monte Carlo error.

The state space collapses exactly as in the paper's proof: for a fixed
evaluation pattern, the publish probability of a key depends only on

* ``L`` — the key-space size,
* ``q`` — how many of the ``L`` keys evaluate to 1 on the profile,
* ``w`` — the tagged key's own evaluation.

The probability that the tagged key is *considered* satisfies the recursion

    ``S(n1, n0) = 1/(n1+n0+1) + n0/(n1+n0+1) * (1-r) * S(n1, n0-1)``

(draw the tagged key now; or draw one of the ``n0`` zero-keys, survive its
accept coin, and continue — drawing any of the ``n1`` one-keys terminates the
run), and the publish probability is ``S`` if ``w = 1`` else ``S * r``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from .params import PrivacyParams

__all__ = [
    "PublishDistribution",
    "consider_probability",
    "publish_probability",
    "worst_case_ratio",
    "exact_failure_probability",
    "average_publish_probability",
]


@lru_cache(maxsize=None)
def _consider(n_ones: int, n_zeros: int, reject_survive: float) -> float:
    """Probability the tagged key is considered, by the proof's recursion.

    ``n_ones`` / ``n_zeros`` count the *other* keys (excluding the tagged
    one) by evaluation; ``reject_survive = 1 - r`` is the probability a
    considered zero-key fails its accept coin and the loop continues.
    """
    total = n_ones + n_zeros + 1
    probability = 1.0 / total
    if n_zeros > 0:
        probability += (
            n_zeros / total
        ) * reject_survive * _consider(n_ones, n_zeros - 1, reject_survive)
    return probability


def consider_probability(num_keys: int, num_ones: int, tagged_eval: int, accept_prob: float) -> float:
    """Exact probability that a tagged key is considered by Algorithm 1.

    Parameters
    ----------
    num_keys:
        Key-space size ``L = 2**l``.
    num_ones:
        Total number of keys (including the tagged one) evaluating to 1 on
        the user's true value — the proof's ``q = Q(d)``.
    tagged_eval:
        The tagged key's own evaluation ``w`` (0 or 1).
    accept_prob:
        Algorithm 1's rejection-branch accept probability ``r``.
    """
    _validate(num_keys, num_ones, tagged_eval)
    if tagged_eval == 1:
        others_one, others_zero = num_ones - 1, num_keys - num_ones
    else:
        others_one, others_zero = num_ones, num_keys - num_ones - 1
    return _consider(others_one, others_zero, 1.0 - accept_prob)


def publish_probability(num_keys: int, num_ones: int, tagged_eval: int, accept_prob: float) -> float:
    """Exact probability that Algorithm 1 publishes a specific tagged key.

    A considered key is published with probability 1 if it evaluates to 1
    and with probability ``r`` otherwise (the proof's ``X_{ds}`` bounds made
    exact).
    """
    considered = consider_probability(num_keys, num_ones, tagged_eval, accept_prob)
    return considered if tagged_eval == 1 else considered * accept_prob


def _validate(num_keys: int, num_ones: int, tagged_eval: int) -> None:
    if num_keys < 1:
        raise ValueError(f"num_keys must be >= 1, got {num_keys}")
    if not 0 <= num_ones <= num_keys:
        raise ValueError(f"num_ones must be in [0, {num_keys}], got {num_ones}")
    if tagged_eval not in (0, 1):
        raise ValueError(f"tagged_eval must be 0 or 1, got {tagged_eval}")
    if tagged_eval == 1 and num_ones == 0:
        raise ValueError("tagged key evaluates to 1 but num_ones is 0")
    if tagged_eval == 0 and num_ones == num_keys:
        raise ValueError("tagged key evaluates to 0 but all keys evaluate to 1")


@dataclass(frozen=True)
class PublishDistribution:
    """Summary of Algorithm 1's exact publish probabilities for fixed ``L``.

    Attributes
    ----------
    num_keys:
        Key-space size ``L``.
    accept_prob:
        The rejection constant ``r`` in force.
    max_probability / min_probability:
        Extremes of ``Pr[publish s]`` over all reachable ``(q, w)`` pairs —
        i.e. over all profiles and evaluation patterns.
    worst_ratio:
        ``max_probability / min_probability`` — the exact worst-case privacy
        ratio that Lemma 3.3 upper-bounds by ``1 / r**2 = ((1-p)/p)**4``.
    """

    num_keys: int
    accept_prob: float
    max_probability: float
    min_probability: float

    @property
    def worst_ratio(self) -> float:
        return self.max_probability / self.min_probability


def worst_case_ratio(num_keys: int, accept_prob: float) -> PublishDistribution:
    """Exact worst-case publish ratio over every profile pair.

    Sweeps every reachable ``(q, w)`` combination: the adversary may compare
    two profiles ``d'`` and ``d''`` under the least favourable fixed pattern
    of public-function evaluations, so the worst ratio pairs the global
    maximum against the global minimum.
    """
    if not 0.0 < accept_prob <= 1.0:
        raise ValueError(f"accept_prob must be in (0,1], got {accept_prob}")
    probabilities = []
    for num_ones in range(num_keys + 1):
        if num_ones >= 1:
            probabilities.append(publish_probability(num_keys, num_ones, 1, accept_prob))
        if num_ones <= num_keys - 1:
            probabilities.append(publish_probability(num_keys, num_ones, 0, accept_prob))
    return PublishDistribution(
        num_keys=num_keys,
        accept_prob=accept_prob,
        max_probability=max(probabilities),
        min_probability=min(probabilities),
    )


def exact_failure_probability(num_keys: int, params: PrivacyParams) -> float:
    """Exact failure probability of Algorithm 1 under a random function.

    Failure requires every key to evaluate to 0 *and* every accept coin to
    miss: ``((1 - p)(1 - r))**L``.  This is strictly smaller than
    Lemma 3.1's conservative ``(1 - p^2)**L`` (the paper lower-bounds the
    per-key stopping probability by ``p^2``); benchmark E1 reports both.
    """
    if num_keys < 1:
        raise ValueError(f"num_keys must be >= 1, got {num_keys}")
    per_key = (1.0 - params.p) * (1.0 - params.rejection_probability)
    return per_key**num_keys


def average_publish_probability(
    num_keys: int, tagged_eval: int, params: PrivacyParams
) -> float:
    """Publish probability averaged over a random public function.

    Conditions on the tagged key's own evaluation ``w`` but averages over
    the Binomial(L-1, p) evaluations of the remaining keys.  Used to verify
    Lemma 3.2 numerically: the averaged probabilities must satisfy

        ``Pr[publish s with f(s)=1] = (1 - p) * Pr[publish at all]``.

    Also demonstrates the information-theoretic heart of the scheme: when
    *all* evaluations are averaged (i.e. ``w`` too), the publish
    distribution is the same for every profile — an attacker who cannot
    evaluate ``H`` learns literally nothing.
    """
    p = params.p
    accept = params.rejection_probability
    total = 0.0
    for other_ones in range(num_keys):
        weight = math.comb(num_keys - 1, other_ones) * p**other_ones * (1.0 - p) ** (
            num_keys - 1 - other_ones
        )
        num_ones = other_ones + (1 if tagged_eval == 1 else 0)
        total += weight * publish_probability(num_keys, num_ones, tagged_eval, accept)
    return total
