"""Contiguous user-range partitioning — the shard axis of horizontal serving.

The paper's counting queries reduce by pure summation over users, so any
partition of the user population into disjoint groups recombines
*exactly*: per-group integer bit sums and Hamming-weight histograms add
up to precisely the statistics a single store would compute.  This
module picks the one partition that also preserves *order*: contiguous
ranges of the **sorted** user-id universe.

Why sorted-contiguous specifically: ``SketchStore.aligned_columns``
orders its common users by ``sorted(common)``.  When shard ``i`` holds
the ``i``-th contiguous slice of the sorted universe, every shard's
aligned order is itself sorted and every aligned user of shard ``i``
precedes every aligned user of shard ``i + 1`` — so concatenating
per-shard aligned results in shard order reproduces the single-store
aligned order exactly, row for row.  That is what lets a coordinator
return bit-identical ``bit_matrix`` responses (and exact argsort
reconstruction in the partitioner property tests) without any global
re-sort.

The helpers here are deliberately store-agnostic: they operate on the
``{subset: column}`` mapping produced by ``SketchStore.to_columns`` and
rebuild columns via ``type(column)(...)``, so ``repro.core`` does not
import ``repro.server``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TypeVar

import numpy as np

__all__ = [
    "range_bounds",
    "split_columns_by_user_range",
    "user_universe",
]

Subset = Tuple[int, ...]
#: Any ``(user_ids, keys, num_bits, iterations)`` NamedTuple — in
#: practice :class:`repro.server.collector.SketchColumn`.
ColumnT = TypeVar("ColumnT")


def user_universe(columns: Dict[Subset, ColumnT]) -> List[str]:
    """Sorted union of every user id appearing in any column.

    Sorted lexicographically — the exact order
    ``SketchStore.aligned_columns`` sorts common users by, which is what
    makes contiguous ranges of this universe concatenation-compatible
    with single-store alignment (see the module docstring).
    """
    universe: set = set()
    for column in columns.values():
        universe.update(column.user_ids)
    return sorted(universe)


def range_bounds(num_users: int, n_shards: int) -> List[Tuple[int, int]]:
    """Balanced contiguous ``[lo, hi)`` index ranges covering ``range(num_users)``.

    The first ``num_users % n_shards`` shards take one extra user, so
    shard sizes differ by at most one and concatenating the ranges in
    shard order reproduces ``range(num_users)`` exactly.  ``n_shards``
    may exceed ``num_users`` — the surplus shards get empty ranges.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if num_users < 0:
        raise ValueError(f"num_users must be >= 0, got {num_users}")
    base, extra = divmod(num_users, n_shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(n_shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def split_columns_by_user_range(
    columns: Dict[Subset, ColumnT], n_shards: int
) -> List[Dict[Subset, ColumnT]]:
    """Split per-subset columns into ``n_shards`` contiguous user ranges.

    Properties (asserted by the hypothesis suite in
    ``tests/test_partition.py``):

    * shard universes are pairwise disjoint and jointly cover every user;
    * their concatenation in shard order *is* the sorted universe
      (contiguity);
    * within each shard, every column keeps its original publication
      order, so concatenating a subset's shard pieces and argsorting by
      original position reconstructs the original column exactly.

    A shard whose range contains no publisher of some subset simply
    omits that subset (stores never hold empty columns — see
    ``SketchStore.publish_column``).
    """
    universe = user_universe(columns)
    bounds = range_bounds(len(universe), n_shards)
    shards: List[Dict[Subset, ColumnT]] = []
    for lo, hi in bounds:
        members = set(universe[lo:hi])
        shard: Dict[Subset, ColumnT] = {}
        for subset, column in columns.items():
            count = len(column.user_ids)
            mask = np.fromiter(
                (uid in members for uid in column.user_ids), dtype=bool, count=count
            )
            if not mask.any():
                continue
            keep = mask.tolist()
            shard[subset] = type(column)(
                user_ids=[uid for uid, kept in zip(column.user_ids, keep) if kept],
                keys=np.ascontiguousarray(np.asarray(column.keys)[mask]),
                num_bits=np.ascontiguousarray(np.asarray(column.num_bits)[mask]),
                iterations=np.ascontiguousarray(np.asarray(column.iterations)[mask]),
            )
        shards.append(shard)
    return shards
