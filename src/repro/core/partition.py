"""Contiguous user-range partitioning — the shard axis of horizontal serving.

The paper's counting queries reduce by pure summation over users, so any
partition of the user population into disjoint groups recombines
*exactly*: per-group integer bit sums and Hamming-weight histograms add
up to precisely the statistics a single store would compute.  This
module picks the one partition that also preserves *order*: contiguous
ranges of the **sorted** user-id universe.

Why sorted-contiguous specifically: ``SketchStore.aligned_columns``
orders its common users by ``sorted(common)``.  When shard ``i`` holds
the ``i``-th contiguous slice of the sorted universe, every shard's
aligned order is itself sorted and every aligned user of shard ``i``
precedes every aligned user of shard ``i + 1`` — so concatenating
per-shard aligned results in shard order reproduces the single-store
aligned order exactly, row for row.  That is what lets a coordinator
return bit-identical ``bit_matrix`` responses (and exact argsort
reconstruction in the partitioner property tests) without any global
re-sort.

The helpers here are deliberately store-agnostic: they operate on the
``{subset: column}`` mapping produced by ``SketchStore.to_columns`` and
rebuild columns via ``type(column)(...)``, so ``repro.core`` does not
import ``repro.server``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TypeVar

import numpy as np

__all__ = [
    "merge_bounds",
    "merge_columns",
    "range_bounds",
    "split_bounds",
    "split_columns_at",
    "split_columns_by_user_range",
    "user_universe",
]

Subset = Tuple[int, ...]
#: Any ``(user_ids, keys, num_bits, iterations)`` NamedTuple — in
#: practice :class:`repro.server.collector.SketchColumn`.
ColumnT = TypeVar("ColumnT")


def user_universe(columns: Dict[Subset, ColumnT]) -> List[str]:
    """Sorted union of every user id appearing in any column.

    Sorted lexicographically — the exact order
    ``SketchStore.aligned_columns`` sorts common users by, which is what
    makes contiguous ranges of this universe concatenation-compatible
    with single-store alignment (see the module docstring).
    """
    universe: set = set()
    for column in columns.values():
        universe.update(column.user_ids)
    return sorted(universe)


def range_bounds(num_users: int, n_shards: int) -> List[Tuple[int, int]]:
    """Balanced contiguous ``[lo, hi)`` index ranges covering ``range(num_users)``.

    The first ``num_users % n_shards`` shards take one extra user, so
    shard sizes differ by at most one and concatenating the ranges in
    shard order reproduces ``range(num_users)`` exactly.  ``n_shards``
    may exceed ``num_users`` — the surplus shards get empty ranges.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if num_users < 0:
        raise ValueError(f"num_users must be >= 0, got {num_users}")
    base, extra = divmod(num_users, n_shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(n_shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def split_bounds(bounds: Tuple[int, int], at: int) -> List[Tuple[int, int]]:
    """Split one ``[lo, hi)`` index range into two at interior point ``at``.

    Both halves are non-empty: ``lo < at < hi`` is required, so splitting
    can never manufacture an empty shard.  ``merge_bounds`` is the exact
    inverse: ``merge_bounds(*split_bounds(b, at)) == b`` for every valid
    ``at``, which the hypothesis suite asserts round-trip.
    """
    lo, hi = bounds
    if not lo < at < hi:
        raise ValueError(
            f"split point {at} must lie strictly inside [{lo}, {hi})"
        )
    return [(lo, at), (at, hi)]


def merge_bounds(left: Tuple[int, int], right: Tuple[int, int]) -> Tuple[int, int]:
    """Merge two *adjacent* ``[lo, hi)`` index ranges into one.

    Adjacency (``left[1] == right[0]``) is required — merging
    non-neighbouring ranges would break the contiguity invariant that
    makes shard concatenation reproduce single-store alignment.
    """
    if left[1] != right[0]:
        raise ValueError(
            f"ranges {left} and {right} are not adjacent; "
            "only neighbouring shards can merge"
        )
    return (left[0], right[1])


def _filter_columns(
    columns: Dict[Subset, ColumnT], keep: "np.ndarray", subset: Subset
) -> ColumnT:
    column = columns[subset]
    mask = np.asarray(keep, dtype=bool)
    kept = mask.tolist()
    return type(column)(
        user_ids=[uid for uid, k in zip(column.user_ids, kept) if k],
        keys=np.ascontiguousarray(np.asarray(column.keys)[mask]),
        num_bits=np.ascontiguousarray(np.asarray(column.num_bits)[mask]),
        iterations=np.ascontiguousarray(np.asarray(column.iterations)[mask]),
    )


def split_columns_at(
    columns: Dict[Subset, ColumnT], boundary: str
) -> Tuple[Dict[Subset, ColumnT], Dict[Subset, ColumnT]]:
    """Carve columns into (``user < boundary``, ``user >= boundary``) halves.

    This is the live-rebalancing counterpart of
    :func:`split_columns_by_user_range`: instead of slicing a fresh
    store into N balanced ranges, it cuts an *existing* shard's columns
    at an arbitrary user-id boundary, so a donor shard can keep the left
    half and hand the right half to a recipient.  The boundary itself
    need not be a published user id — comparison is plain lexicographic
    ``<`` on the id strings, matching the sort order of
    :func:`user_universe`.

    Per-column publication order is preserved on both sides, so for each
    subset the left and right pieces concatenated (left first) and
    argsorted by original position reconstruct the donor column
    bit-for-bit; subsets with no publisher on a side are omitted there
    (stores never hold empty columns).
    """
    left: Dict[Subset, ColumnT] = {}
    right: Dict[Subset, ColumnT] = {}
    for subset, column in columns.items():
        count = len(column.user_ids)
        mask = np.fromiter(
            (uid < boundary for uid in column.user_ids), dtype=bool, count=count
        )
        if mask.any():
            left[subset] = _filter_columns(columns, mask, subset)
        if not mask.all():
            right[subset] = _filter_columns(columns, ~mask, subset)
    return left, right


def merge_columns(
    parts: List[Dict[Subset, ColumnT]]
) -> Dict[Subset, ColumnT]:
    """Concatenate per-subset column pieces from ``parts`` in part order.

    The inverse of carving: given the column dicts of range-disjoint
    shards listed in range order, the merged column for each subset is
    the pieces' arrays concatenated part by part.  Publication order
    within each piece is preserved, and a subset absent from every part
    stays absent.  Duplicate user ids across parts are rejected — parts
    must come from a genuine partition of the user universe.
    """
    merged: Dict[Subset, ColumnT] = {}
    for part in parts:
        for subset, column in part.items():
            if subset not in merged:
                merged[subset] = column
                continue
            base = merged[subset]
            overlap = set(base.user_ids) & set(column.user_ids)
            if overlap:
                sample = sorted(overlap)[:3]
                raise ValueError(
                    f"cannot merge columns for subset {subset}: user ids "
                    f"{sample} appear in more than one part"
                )
            merged[subset] = type(base)(
                user_ids=list(base.user_ids) + list(column.user_ids),
                keys=np.ascontiguousarray(
                    np.concatenate([np.asarray(base.keys), np.asarray(column.keys)])
                ),
                num_bits=np.ascontiguousarray(
                    np.concatenate(
                        [np.asarray(base.num_bits), np.asarray(column.num_bits)]
                    )
                ),
                iterations=np.ascontiguousarray(
                    np.concatenate(
                        [np.asarray(base.iterations), np.asarray(column.iterations)]
                    )
                ),
            )
    return merged


def split_columns_by_user_range(
    columns: Dict[Subset, ColumnT], n_shards: int
) -> List[Dict[Subset, ColumnT]]:
    """Split per-subset columns into ``n_shards`` contiguous user ranges.

    Properties (asserted by the hypothesis suite in
    ``tests/test_partition.py``):

    * shard universes are pairwise disjoint and jointly cover every user;
    * their concatenation in shard order *is* the sorted universe
      (contiguity);
    * within each shard, every column keeps its original publication
      order, so concatenating a subset's shard pieces and argsorting by
      original position reconstructs the original column exactly.

    A shard whose range contains no publisher of some subset simply
    omits that subset (stores never hold empty columns — see
    ``SketchStore.publish_column``).
    """
    universe = user_universe(columns)
    bounds = range_bounds(len(universe), n_shards)
    shards: List[Dict[Subset, ColumnT]] = []
    for lo, hi in bounds:
        members = set(universe[lo:hi])
        shard: Dict[Subset, ColumnT] = {}
        for subset, column in columns.items():
            count = len(column.user_ids)
            mask = np.fromiter(
                (uid in members for uid in column.user_ids), dtype=bool, count=count
            )
            if not mask.any():
                continue
            keep = mask.tolist()
            shard[subset] = type(column)(
                user_ids=[uid for uid, kept in zip(column.user_ids, keep) if kept],
                keys=np.ascontiguousarray(np.asarray(column.keys)[mask]),
                num_bits=np.ascontiguousarray(np.asarray(column.num_bits)[mask]),
                iterations=np.ascontiguousarray(np.asarray(column.iterations)[mask]),
            )
        shards.append(shard)
    return shards
