"""The privacy-utility-capacity frontier.

Everything in the construction trades along one dial, ``p``:

* privacy: per-sketch ratio ``((1-p)/p)^4``;
* utility: query error ``~ 1/((1-2p) sqrt(M))``;
* capacity: sketches per user within a budget, deterministic
  (Corollary 3.4) or relaxed (§5's quadratic improvement).

This module computes frontier tables so deployments can pick operating
points, and benchmarks X2 plots the deterministic-vs-relaxed capacity gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.accountant import PrivacyAccountant, RelaxedPrivacyAccountant
from ..core.params import PrivacyParams, p_for_epsilon

__all__ = ["FrontierPoint", "privacy_utility_frontier", "capacity_comparison"]


@dataclass(frozen=True)
class FrontierPoint:
    """One operating point on the privacy-utility frontier."""

    p: float
    per_sketch_epsilon: float
    query_error: float
    users_for_1pct: int

    @classmethod
    def at(cls, p: float, num_users: int, delta: float = 0.05) -> "FrontierPoint":
        params = PrivacyParams(p)
        error = params.utility_error(num_users, delta)
        # users needed for 1% error at the same confidence
        import math

        users = math.ceil(
            4.0 * math.log(1.0 / delta) / (0.01 * params.debias_denominator) ** 2
        )
        return cls(
            p=p,
            per_sketch_epsilon=params.epsilon(1),
            query_error=error,
            users_for_1pct=users,
        )


def privacy_utility_frontier(
    biases: Sequence[float], num_users: int, delta: float = 0.05
) -> List[FrontierPoint]:
    """Frontier sweep across the bias dial at a fixed population size."""
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")
    return [FrontierPoint.at(p, num_users, delta) for p in biases]


def capacity_comparison(
    epsilon: float,
    sketch_counts: Sequence[int],
    delta: float = 1e-9,
) -> List[dict]:
    """Deterministic vs relaxed sketch capacity (§5's quadratic remark).

    For each target sketch count ``l``, sizes ``p`` by the exact
    Corollary 3.4 inversion, then reports how many sketches each
    accountant actually admits at that ``p``.  The relaxed ledger's
    advantage appears once the deterministic capacity is large (the Azuma
    ``sqrt(l)`` beats the union bound's ``l``).
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    rows = []
    for target in sketch_counts:
        if target < 1:
            raise ValueError(f"sketch counts must be >= 1, got {target}")
        p = p_for_epsilon(epsilon, target)
        params = PrivacyParams(p)
        deterministic = PrivacyAccountant(params, epsilon).max_sketches
        relaxed = RelaxedPrivacyAccountant(params, epsilon, delta).max_sketches
        rows.append(
            {
                "target_l": target,
                "p": p,
                "deterministic": deterministic,
                "relaxed": relaxed,
                "gain": relaxed / max(1, deterministic),
            }
        )
    return rows
