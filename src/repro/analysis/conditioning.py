"""Appendix F's closing empirical study: conditioning of the kernel ``V``.

"An empirical analysis of the conditioning number of the matrix V suggests
that it decreases exponentially in k, with the base of the exponent
proportional to 1/(p - 1/2)."  (The *accuracy* decreases; the condition
number *grows* — we reproduce the growth and fit its base.)

:func:`conditioning_sweep` produces the table benchmark E14 prints, and
:func:`fit_exponential_base` extracts the per-``k`` growth factor so tests
can assert the ``1 / (1 - 2p)``-proportionality the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.combine import condition_number

__all__ = ["ConditioningRow", "conditioning_sweep", "fit_exponential_base"]


@dataclass(frozen=True)
class ConditioningRow:
    """One cell of the conditioning study: ``cond(V)`` at ``(k, p)``."""

    k: int
    p: float
    condition: float


def conditioning_sweep(
    widths: Sequence[int], biases: Sequence[float]
) -> List[ConditioningRow]:
    """Condition numbers of ``V`` over a ``(k, p)`` grid."""
    rows = []
    for p in biases:
        for k in widths:
            rows.append(ConditioningRow(k=k, p=p, condition=condition_number(k, p)))
    return rows


def fit_exponential_base(widths: Sequence[int], p: float) -> Tuple[float, float]:
    """Fit ``cond(V) ~ C * base^k`` by least squares on ``log cond``.

    Returns ``(base, r_squared)``.  The paper's observation predicts
    ``base ~ 1/(1-2p)`` (up to a constant factor); benchmark E14 tabulates
    the fitted base against that prediction across ``p``.
    """
    ks = np.asarray(list(widths), dtype=np.float64)
    if ks.size < 2:
        raise ValueError("need at least two widths to fit a growth rate")
    logs = np.asarray([np.log(condition_number(int(k), p)) for k in ks])
    slope, intercept = np.polyfit(ks, logs, 1)
    predictions = slope * ks + intercept
    residual = float(((logs - predictions) ** 2).sum())
    total = float(((logs - logs.mean()) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return float(np.exp(slope)), r_squared
