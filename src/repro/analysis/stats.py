"""Error metrics and statistical helpers shared by tests and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "rmse",
    "mae",
    "max_abs_error",
    "error_quantile",
    "empirical_coverage",
    "DecayFit",
    "fit_power_decay",
]


def _paired(estimates: Sequence[float], truths: Sequence[float]) -> np.ndarray:
    est = np.asarray(estimates, dtype=np.float64)
    tru = np.asarray(truths, dtype=np.float64)
    if est.shape != tru.shape:
        raise ValueError(f"shape mismatch: {est.shape} vs {tru.shape}")
    if est.size == 0:
        raise ValueError("no observations")
    return est - tru


def rmse(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Root-mean-squared error."""
    return float(np.sqrt(np.mean(_paired(estimates, truths) ** 2)))


def mae(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Mean absolute error."""
    return float(np.mean(np.abs(_paired(estimates, truths))))


def max_abs_error(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Worst-case absolute error."""
    return float(np.max(np.abs(_paired(estimates, truths))))


def error_quantile(
    estimates: Sequence[float], truths: Sequence[float], quantile: float = 0.95
) -> float:
    """Quantile of the absolute error (e.g. the 95th percentile the
    Lemma 4.1 CI should dominate)."""
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0,1], got {quantile}")
    return float(np.quantile(np.abs(_paired(estimates, truths)), quantile))


def empirical_coverage(
    truths: Sequence[float],
    lows: Sequence[float],
    highs: Sequence[float],
) -> float:
    """Fraction of confidence intervals containing the truth."""
    tru = np.asarray(truths, dtype=np.float64)
    low = np.asarray(lows, dtype=np.float64)
    high = np.asarray(highs, dtype=np.float64)
    if not (tru.shape == low.shape == high.shape):
        raise ValueError("truths/lows/highs must have equal shapes")
    if tru.size == 0:
        raise ValueError("no intervals")
    return float(np.mean((low <= tru) & (tru <= high)))


@dataclass(frozen=True)
class DecayFit:
    """Power-law fit ``error ~ C * M^exponent``.

    Lemma 4.1 predicts ``exponent ~ -1/2`` for the sketch estimator's error
    as a function of the user count ``M``.
    """

    coefficient: float
    exponent: float
    r_squared: float


def fit_power_decay(sizes: Sequence[int], errors: Sequence[float]) -> DecayFit:
    """Fit ``error = C * M^a`` by least squares in log-log space."""
    m = np.asarray(sizes, dtype=np.float64)
    e = np.asarray(errors, dtype=np.float64)
    if m.shape != e.shape or m.size < 2:
        raise ValueError("need >= 2 matched (size, error) pairs")
    if (m <= 0).any() or (e <= 0).any():
        raise ValueError("sizes and errors must be positive for a log-log fit")
    log_m, log_e = np.log(m), np.log(e)
    slope, intercept = np.polyfit(log_m, log_e, 1)
    predictions = slope * log_m + intercept
    residual = float(((log_e - predictions) ** 2).sum())
    total = float(((log_e - log_e.mean()) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return DecayFit(
        coefficient=float(np.exp(intercept)),
        exponent=float(slope),
        r_squared=r_squared,
    )
