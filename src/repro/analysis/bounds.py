"""Closed-form bounds from the paper, in one queryable place.

Everything here is a pure function of the paper's parameters — no data, no
randomness.  Benchmarks print these next to measured values; tests check
internal consistency (e.g. the exact Appendix B constant really converges
to the paper's ``c <= 1/4``).
"""

from __future__ import annotations

import math

from ..core.params import PrivacyParams

__all__ = [
    "sketch_length_bound",
    "sketch_failure_bound",
    "privacy_ratio_bound",
    "utility_error_bound",
    "utility_tail_bound",
    "bit_flip_ratio",
    "bit_flip_is_private",
    "bit_flip_max_constant",
    "worst_case_iterations",
]


def sketch_length_bound(num_users: int, failure_prob: float, p: float) -> int:
    """Lemma 3.1: minimal sketch length in bits (see
    :meth:`~repro.core.params.PrivacyParams.sketch_length` for the
    derivation notes)."""
    return PrivacyParams(p).sketch_length(num_users, failure_prob)


def sketch_failure_bound(sketch_bits: int, num_users: int, p: float) -> float:
    """Lemma 3.1's union-bounded failure probability ``M (1-p^2)^{2^l}``."""
    return PrivacyParams(p).failure_probability(sketch_bits, num_users)


def privacy_ratio_bound(p: float, num_sketches: int = 1) -> float:
    """Lemma 3.3 / Corollary 3.4: ``((1-p)/p)^{4 l}``."""
    return PrivacyParams(p).privacy_ratio_bound(num_sketches)


def utility_error_bound(num_users: int, delta: float, p: float) -> float:
    """Lemma 4.1 part 2: error at confidence ``1 - delta``."""
    return PrivacyParams(p).utility_error(num_users, delta)


def utility_tail_bound(error: float, num_users: int, p: float) -> float:
    """Lemma 4.1 part 1: ``exp(-error^2 (1-2p)^2 M / 4)``."""
    return PrivacyParams(p).utility_tail(error, num_users)


def worst_case_iterations(num_users: int, failure_prob: float, p: float) -> float:
    """Section 3's worst-case iteration count ``log(M/tau) / |log(1-p^2)|``."""
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")
    if not 0.0 < failure_prob < 1.0:
        raise ValueError(f"failure_prob must be in (0,1), got {failure_prob}")
    if not 0.0 < p < 0.5:
        raise ValueError(f"p must be in (0, 1/2), got {p}")
    return math.log(num_users / failure_prob) / abs(math.log(1.0 - p**2))


# ----------------------------------------------------------------------
# Appendix B — single-bit flipping
# ----------------------------------------------------------------------
def bit_flip_ratio(p: float) -> float:
    """Worst-case single-bit distinguishing ratio ``(1-p)/p``."""
    if not 0.0 < p < 0.5:
        raise ValueError(f"p must be in (0, 1/2), got {p}")
    return (1.0 - p) / p


def bit_flip_is_private(p: float, epsilon: float) -> bool:
    """Whether flipping with probability ``p`` is ``epsilon``-private.

    Lemma B.1's condition, checked exactly: both ``p/(1-p)`` and
    ``(1-p)/p`` must stay at most ``1 + epsilon``; for ``p < 1/2`` the
    binding one is ``(1-p)/p``.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return bit_flip_ratio(p) <= 1.0 + epsilon


def bit_flip_max_constant(epsilon: float) -> float:
    """The exact Appendix B constant: largest ``c`` with ``p = 1/2 - c eps``
    still ``eps``-private.

    Solving ``(1/2 + c eps) / (1/2 - c eps) = 1 + eps`` gives
    ``c = 1 / (2 (2 + eps))`` — which approaches the paper's stated
    ``1/4`` as ``eps -> 0`` and is strictly below it for any positive
    ``eps`` (the paper's ``c <= 1/4`` is the first-order statement).
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return 1.0 / (2.0 * (2.0 + epsilon))
