"""Analytic bounds, conditioning studies and error statistics."""

from .bounds import (
    bit_flip_is_private,
    bit_flip_max_constant,
    bit_flip_ratio,
    privacy_ratio_bound,
    sketch_failure_bound,
    sketch_length_bound,
    utility_error_bound,
    utility_tail_bound,
    worst_case_iterations,
)
from .conditioning import ConditioningRow, conditioning_sweep, fit_exponential_base
from .tradeoff import FrontierPoint, capacity_comparison, privacy_utility_frontier
from .stats import (
    DecayFit,
    empirical_coverage,
    error_quantile,
    fit_power_decay,
    mae,
    max_abs_error,
    rmse,
)

__all__ = [
    "ConditioningRow",
    "DecayFit",
    "FrontierPoint",
    "bit_flip_is_private",
    "bit_flip_max_constant",
    "bit_flip_ratio",
    "capacity_comparison",
    "conditioning_sweep",
    "empirical_coverage",
    "error_quantile",
    "fit_exponential_base",
    "fit_power_decay",
    "mae",
    "privacy_utility_frontier",
    "max_abs_error",
    "privacy_ratio_bound",
    "rmse",
    "sketch_failure_bound",
    "sketch_length_bound",
    "utility_error_bound",
    "utility_tail_bound",
    "worst_case_iterations",
]
