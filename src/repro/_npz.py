"""Shared plumbing for the columnar (v2) ``.npz`` file formats.

Both columnar serializers — sketch stores (`repro.server.serialization`)
and profile databases (`repro.data.serialization`) — use the same
envelope: a zip-framed NumPy archive whose ``meta`` member is a JSON
header (format tag + version) followed by payload arrays.  The sniffing,
meta validation, and truncation handling live here once so the two
formats cannot drift apart.
"""

from __future__ import annotations

import contextlib
import json
import zipfile
from typing import IO

import numpy as np

__all__ = [
    "ZIP_MAGIC",
    "decode_strings",
    "encode_strings",
    "is_zip_payload",
    "meta_array",
    "open_npz",
    "read_meta",
    "truncation_guard",
]

# A .npz archive is a zip file; the JSONL formats open with "{".
ZIP_MAGIC = b"PK"


def is_zip_payload(payload: bytes) -> bool:
    """Whether an in-memory payload is zip-framed (i.e. columnar v2)."""
    return payload[:2] == ZIP_MAGIC


def meta_array(meta: dict) -> np.ndarray:
    """Encode a JSON header as the uint8 ``meta`` member of an archive."""
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)


def encode_strings(strings) -> tuple[np.ndarray, np.ndarray]:
    """Encode a string sequence as ``(utf-8 byte blob, char lengths)``.

    Fixed-width numpy unicode arrays silently strip trailing NUL
    characters (``np.asarray(["a\\x00"]).tolist() == ["a"]``), which
    would break the lossless round-trip contract for pathological ids;
    a raw byte blob preserves every code point.  Lengths are counted in
    *characters* so the reader can decode the whole blob once and slice,
    instead of decoding per string.
    """
    values = [str(s) for s in strings]
    blob = np.frombuffer("".join(values).encode("utf-8"), dtype=np.uint8)
    lengths = np.fromiter((len(v) for v in values), dtype=np.int64, count=len(values))
    return blob, lengths


def decode_strings(blob: np.ndarray, lengths: np.ndarray) -> list[str]:
    """Inverse of :func:`encode_strings`."""
    if not np.issubdtype(np.asarray(lengths).dtype, np.integer):
        raise ValueError(
            f"string lengths must be integers, got dtype {np.asarray(lengths).dtype}"
        )
    try:
        text = bytes(blob).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ValueError(f"malformed string blob: {exc}") from exc
    strings: list[str] = []
    position = 0
    for length in lengths.tolist():
        if length < 0:
            raise ValueError(f"negative string length {length} in blob index")
        strings.append(text[position : position + length])
        position += length
    if position != len(text):
        raise ValueError(
            f"string blob holds {len(text)} characters but the lengths "
            f"account for {position}"
        )
    return strings


def open_npz(handle: IO[bytes], describe: str):
    """Open an ``.npz`` archive, mapping framing failures to ValueError."""
    try:
        return np.load(handle, allow_pickle=False)
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        raise ValueError(
            f"malformed or truncated columnar {describe} file: {exc}"
        ) from exc


@contextlib.contextmanager
def truncation_guard(describe: str):
    """Re-raise mid-read framing failures as ValueError.

    Array members decompress lazily, so truncation can surface while
    payload arrays are being read rather than at open time; domain
    ``ValueError``s raised inside the block pass through untouched.
    """
    try:
        yield
    except (zipfile.BadZipFile, OSError, EOFError) as exc:
        raise ValueError(
            f"malformed or truncated columnar {describe} file: {exc}"
        ) from exc


def read_meta(archive, tag: str, version: int, describe: str) -> dict:
    """Extract and validate the JSON ``meta`` member of an archive."""
    if "meta" not in archive.files:
        raise ValueError(f"columnar {describe} file has no 'meta' member")
    try:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed columnar {describe} meta: {exc}") from exc
    if not isinstance(meta, dict) or meta.get("format") != tag:
        got = meta.get("format") if isinstance(meta, dict) else meta
        raise ValueError(f"not a {describe} file (format={got!r})")
    if meta.get("version") != version:
        raise ValueError(
            f"unsupported columnar {describe} version {meta.get('version')!r}; "
            f"this library reads version {version}"
        )
    return meta
