"""Wire envelopes: the framing every protocol message shares.

Every message this library puts on a wire — typed query requests and
responses, the structured error envelope, the auth handshake, and the
legacy block request/response of :mod:`repro.server.serialization` — is
one JSON object carrying a ``format`` tag (which message this is) and a
``version`` (which revision of that message the sender speaks).  The two
helpers here are the single implementation of that contract:

* :func:`dumps_wire_message` prepends the tag and version to a body dict
  and serialises it (key order is preserved, so a fixed body-key order
  yields byte-stable output — the legacy block request relies on this);
* :func:`loads_wire_message` parses a payload and rejects non-JSON
  input, foreign tags, and unsupported versions with a
  :class:`~repro.protocol.messages.ProtocolError` whose ``code`` slots
  straight into the structured error envelope.

Versioning is per-tag: bumping the query-request version does not
invalidate stored sketch archives or the legacy block messages, each of
which carries its own version.
"""

from __future__ import annotations

import json

__all__ = ["PROTOCOL_VERSION", "ProtocolError", "dumps_wire_message", "loads_wire_message"]

#: Version of the typed query request/response/error messages.  The
#: legacy block request/response keep their own historical version (1).
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A message that violates the wire protocol, with a structured code.

    Subclasses :class:`ValueError` so pre-protocol callers (and tests)
    that caught ``ValueError`` from the legacy wire helpers keep working;
    the ``code`` attribute is what the server puts in the error envelope
    instead of a traceback.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def dumps_wire_message(tag: str, version: int, body: dict) -> str:
    """Serialise one wire message: ``format`` + ``version`` + body keys.

    The body's key order is preserved (after the two envelope keys), so
    callers that fix their key order get byte-for-byte stable payloads.
    """
    message = {"format": tag, "version": int(version)}
    message.update(body)
    return json.dumps(message)


def loads_wire_message(payload: str, expected_tag: str, expected_version: int) -> dict:
    """Parse and validate one wire message's envelope; returns the dict.

    Raises
    ------
    ProtocolError
        ``code="malformed_request"`` for non-JSON or non-object payloads
        and foreign tags; ``code="unsupported_version"`` for a version
        this library does not speak.  The messages are identical to the
        historical ``ValueError`` texts, so existing matchers still hold.
    """
    try:
        message = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            "malformed_request", f"malformed wire message: {exc}"
        ) from exc
    if not isinstance(message, dict) or message.get("format") != expected_tag:
        got = message.get("format") if isinstance(message, dict) else message
        raise ProtocolError(
            "malformed_request",
            f"expected a {expected_tag} message, got format={got!r}",
        )
    if message.get("version") != expected_version:
        raise ProtocolError(
            "unsupported_version",
            f"unsupported {expected_tag} version {message.get('version')!r}; "
            f"this library speaks version {expected_version}",
        )
    return message
