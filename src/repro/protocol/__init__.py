"""The typed query protocol: one request path from analyst to engine.

Everything a query needs to travel — between modules, processes, or
hosts — lives here: the shared wire envelope
(:mod:`~repro.protocol.envelope`), one versioned request dataclass per
query family, the response and structured-error envelopes, and the
serialisation entry points (:mod:`~repro.protocol.messages`).
:meth:`repro.server.engine.QueryEngine.execute` dispatches these
requests; :class:`repro.server.remote.RemoteServer` serves them over a
socket; the legacy block request/response of
:mod:`repro.server.serialization` are thin shims over the same
envelope helpers.
"""

from .envelope import (
    PROTOCOL_VERSION,
    ProtocolError,
    dumps_wire_message,
    loads_wire_message,
)
from .messages import (
    ERROR_CODES,
    ERROR_TAG,
    HELLO_TAG,
    REQUEST_KINDS,
    REQUEST_TAG,
    RESPONSE_TAG,
    WELCOME_TAG,
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    EvaluatePlanRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
    PingRequest,
    QueryError,
    QueryRequest,
    QueryResponse,
    RemoteQueryError,
    ShardPartialRequest,
    StatusRequest,
    dumps_error,
    dumps_hello,
    dumps_request,
    dumps_response,
    dumps_welcome,
    error_from_exception,
    estimate_from_payload,
    estimate_to_payload,
    exception_from_error,
    loads_error,
    loads_hello,
    loads_request,
    loads_request_envelope,
    loads_response,
    loads_welcome,
    parse_reply,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "dumps_wire_message",
    "loads_wire_message",
    "ERROR_CODES",
    "ERROR_TAG",
    "HELLO_TAG",
    "REQUEST_KINDS",
    "REQUEST_TAG",
    "RESPONSE_TAG",
    "WELCOME_TAG",
    "AnyOfRequest",
    "BitMatrixRequest",
    "CountsBlockRequest",
    "EstimateManyRequest",
    "EvaluatePlanRequest",
    "ExactlyLRequest",
    "FractionRequest",
    "MarginalRequest",
    "PingRequest",
    "QueryError",
    "QueryRequest",
    "QueryResponse",
    "RemoteQueryError",
    "ShardPartialRequest",
    "StatusRequest",
    "dumps_error",
    "dumps_hello",
    "dumps_request",
    "dumps_response",
    "dumps_welcome",
    "error_from_exception",
    "estimate_from_payload",
    "estimate_to_payload",
    "exception_from_error",
    "loads_error",
    "loads_hello",
    "loads_request",
    "loads_request_envelope",
    "loads_response",
    "loads_welcome",
    "parse_reply",
]
