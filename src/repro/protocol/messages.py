"""Typed query protocol: one request shape per query family the engine answers.

Before this module existed the same logical query reached the engine
through three unrelated shapes — direct :class:`QueryEngine` method
calls, :class:`~repro.queries.conjunctive.LinearPlan` evaluation, and
the ad-hoc block-request strings of :mod:`repro.server.serialization` —
so every new transport or message kind multiplied that surface.  Now
there is exactly one: a **versioned, JSON-serialisable request
dataclass** per query family, all sharing the
:mod:`~repro.protocol.envelope` framing, all dispatched through
:meth:`QueryEngine.execute`, whether the caller is in-process or on the
other end of a socket.

The request kinds (mirroring the engine's public surface):

==================  ====================================================
kind                query family
==================  ====================================================
``counts_block``    batched counts for several values of one subset
                    (direct Algorithm 2 or Appendix F partition path)
``estimate_many``   full Algorithm 2 estimates (fraction, CI, count)
``marginal``        all ``2**|B|`` de-biased frequencies of a subset
``fraction``        single fraction, partition-combined when the subset
                    was not sketched directly
``any_of``          Appendix F disjunction over component conjunctions
``exactly_l``       exactly-l-of-k over per-bit sketches
``bit_matrix``      the p-perturbed per-bit indicator matrix
``evaluate_plan``   a compiled :class:`LinearPlan` (sums, intervals,
                    inner products, decision trees, ...)
==================  ====================================================

Every request round-trips ``loads_request(dumps_request(x)) == x``.
Responses are :class:`QueryResponse` envelopes; failures are
:class:`QueryError` envelopes carrying a structured ``code`` + message —
never a raw traceback across the wire.  :func:`parse_reply` is the
client-side inverse: it returns the response or raises the exception the
code maps back to (:class:`BudgetExceeded`, ``MissingSketchError``,
``ValueError``, or :class:`RemoteQueryError`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..core.accountant import BudgetExceeded
from ..core.estimator import QueryEstimate
from ..queries.ast import Conjunction, Literal
from ..queries.conjunctive import LinearPlan, PlanTerm
from .envelope import PROTOCOL_VERSION, ProtocolError, dumps_wire_message, loads_wire_message

__all__ = [
    "REQUEST_TAG",
    "RESPONSE_TAG",
    "ERROR_TAG",
    "HELLO_TAG",
    "WELCOME_TAG",
    "ERROR_CODES",
    "QueryRequest",
    "CountsBlockRequest",
    "EstimateManyRequest",
    "MarginalRequest",
    "FractionRequest",
    "AnyOfRequest",
    "ExactlyLRequest",
    "BitMatrixRequest",
    "EvaluatePlanRequest",
    "ShardPartialRequest",
    "PingRequest",
    "StatusRequest",
    "QueryResponse",
    "QueryError",
    "RemoteQueryError",
    "REQUEST_KINDS",
    "dumps_request",
    "loads_request",
    "loads_request_envelope",
    "dumps_response",
    "loads_response",
    "dumps_error",
    "loads_error",
    "parse_reply",
    "error_from_exception",
    "exception_from_error",
    "estimate_to_payload",
    "estimate_from_payload",
    "dumps_hello",
    "loads_hello",
    "dumps_welcome",
    "loads_welcome",
]

REQUEST_TAG = "repro-query-request"
RESPONSE_TAG = "repro-query-response"
ERROR_TAG = "repro-query-error"
HELLO_TAG = "repro-hello"
WELCOME_TAG = "repro-welcome"

#: Every code the structured error envelope may carry.  4xx-style codes
#: (caller's fault) come first; ``shard_unavailable`` (a required shard
#: is unreachable — retryable once it rejoins) and ``internal_error``
#: are the 5xx-style ones, and no message ever includes a traceback.
ERROR_CODES = (
    "malformed_request",
    "unsupported_version",
    "unknown_kind",
    "invalid_query",
    "missing_sketch",
    "budget_exceeded",
    "unauthorized",
    "rate_limited",
    "deadline_exceeded",
    "shard_unavailable",
    "internal_error",
)


# ----------------------------------------------------------------------
# Field coercion helpers (shared by build() and from_body())
# ----------------------------------------------------------------------
def _int_tuple(values: Sequence[int], what: str) -> Tuple[int, ...]:
    try:
        return tuple(int(v) for v in values)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("malformed_request", f"malformed {what}: {exc}") from exc


def _value_tuple(value: Sequence[int], width: int, what: str) -> Tuple[int, ...]:
    value_t = _int_tuple(value, what)
    if len(value_t) != width:
        raise ProtocolError(
            "malformed_request",
            f"malformed {what}: value width {len(value_t)} does not match "
            f"subset size {width}",
        )
    return value_t


def _require(body: dict, key: str) -> Any:
    if key not in body:
        raise ProtocolError(
            "malformed_request", f"request body is missing required field {key!r}"
        )
    return body[key]


# ----------------------------------------------------------------------
# Request dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryRequest:
    """Base class: one typed, versioned, JSON-serialisable query request.

    Subclasses declare a unique ``kind`` and tuple-typed fields; the
    generic :meth:`body`/:meth:`_from_body` machinery (re)builds them, so
    ``loads_request(dumps_request(x)) == x`` holds for every kind.
    """

    kind: ClassVar[str] = ""

    def body(self) -> dict:
        """The JSON body: ``kind`` plus this request's fields, in order."""
        payload: Dict[str, Any] = {"kind": self.kind}
        for field in fields(self):
            payload[field.name] = _jsonable(getattr(self, field.name))
        return payload

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        """Distinct sketch-column subsets this request names, in order.

        The perimeter accountant's charging unit: each named subset is
        one sketch-release the analyst reads (a partition-combined query
        may touch more columns engine-side; the perimeter charges the
        declared surface, which is what the analyst learns about).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class CountsBlockRequest(QueryRequest):
    """Batched counts for several candidate values of one subset."""

    subset: Tuple[int, ...]
    values: Tuple[Tuple[int, ...], ...]

    kind: ClassVar[str] = "counts_block"

    @classmethod
    def build(
        cls, subset: Sequence[int], values: Sequence[Sequence[int]]
    ) -> "CountsBlockRequest":
        subset_t = _int_tuple(subset, "subset")
        return cls(
            subset=subset_t,
            values=tuple(
                _value_tuple(value, len(subset_t), "values") for value in values
            ),
        )

    @classmethod
    def _from_body(cls, body: dict) -> "CountsBlockRequest":
        return cls.build(_require(body, "subset"), _require(body, "values"))

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return (self.subset,)


@dataclass(frozen=True)
class EstimateManyRequest(QueryRequest):
    """Full Algorithm 2 estimates (fraction, count, CI) for many values."""

    subset: Tuple[int, ...]
    values: Tuple[Tuple[int, ...], ...]

    kind: ClassVar[str] = "estimate_many"

    @classmethod
    def build(
        cls, subset: Sequence[int], values: Sequence[Sequence[int]]
    ) -> "EstimateManyRequest":
        subset_t = _int_tuple(subset, "subset")
        return cls(
            subset=subset_t,
            values=tuple(
                _value_tuple(value, len(subset_t), "values") for value in values
            ),
        )

    @classmethod
    def _from_body(cls, body: dict) -> "EstimateManyRequest":
        return cls.build(_require(body, "subset"), _require(body, "values"))

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return (self.subset,)


@dataclass(frozen=True)
class MarginalRequest(QueryRequest):
    """All ``2**|B|`` de-biased frequencies of one subset (MSB-first)."""

    subset: Tuple[int, ...]

    kind: ClassVar[str] = "marginal"

    @classmethod
    def build(cls, subset: Sequence[int]) -> "MarginalRequest":
        return cls(subset=_int_tuple(subset, "subset"))

    @classmethod
    def _from_body(cls, body: dict) -> "MarginalRequest":
        return cls.build(_require(body, "subset"))

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return (self.subset,)


@dataclass(frozen=True)
class FractionRequest(QueryRequest):
    """One fraction; partition-combined when the subset was not sketched."""

    subset: Tuple[int, ...]
    value: Tuple[int, ...]

    kind: ClassVar[str] = "fraction"

    @classmethod
    def build(cls, subset: Sequence[int], value: Sequence[int]) -> "FractionRequest":
        subset_t = _int_tuple(subset, "subset")
        return cls(subset=subset_t, value=_value_tuple(value, len(subset_t), "value"))

    @classmethod
    def _from_body(cls, body: dict) -> "FractionRequest":
        return cls.build(_require(body, "subset"), _require(body, "value"))

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return (self.subset,)


@dataclass(frozen=True)
class AnyOfRequest(QueryRequest):
    """Appendix F disjunction: ``(subset, value)`` per component conjunction."""

    queries: Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], ...]

    kind: ClassVar[str] = "any_of"

    @classmethod
    def build(
        cls, queries: Sequence[Tuple[Sequence[int], Sequence[int]]]
    ) -> "AnyOfRequest":
        built = []
        for subset, value in queries:
            subset_t = _int_tuple(subset, "any_of subset")
            built.append((subset_t, _value_tuple(value, len(subset_t), "any_of value")))
        return cls(queries=tuple(built))

    def body(self) -> dict:
        return {
            "kind": self.kind,
            "queries": [
                {"subset": list(subset), "value": list(value)}
                for subset, value in self.queries
            ],
        }

    @classmethod
    def _from_body(cls, body: dict) -> "AnyOfRequest":
        raw = _require(body, "queries")
        if not isinstance(raw, (list, tuple)):
            raise ProtocolError(
                "malformed_request", "any_of queries must be a list of objects"
            )
        queries = []
        for entry in raw:
            if isinstance(entry, dict):
                queries.append((_require(entry, "subset"), _require(entry, "value")))
            elif isinstance(entry, (list, tuple)) and len(entry) == 2:
                queries.append((entry[0], entry[1]))
            else:
                raise ProtocolError(
                    "malformed_request",
                    f"malformed any_of component: {entry!r}",
                )
        return cls.build(queries)

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return tuple(dict.fromkeys(subset for subset, _ in self.queries))


@dataclass(frozen=True)
class ExactlyLRequest(QueryRequest):
    """Fraction of users with exactly ``l`` of the given bits set."""

    positions: Tuple[int, ...]
    l: int

    kind: ClassVar[str] = "exactly_l"

    @classmethod
    def build(cls, positions: Sequence[int], l: int) -> "ExactlyLRequest":
        try:
            l_int = int(l)
        except (TypeError, ValueError) as exc:
            raise ProtocolError("malformed_request", f"malformed l: {exc}") from exc
        return cls(positions=_int_tuple(positions, "positions"), l=l_int)

    @classmethod
    def _from_body(cls, body: dict) -> "ExactlyLRequest":
        return cls.build(_require(body, "positions"), _require(body, "l"))

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return tuple(dict.fromkeys((pos,) for pos in self.positions))


@dataclass(frozen=True)
class BitMatrixRequest(QueryRequest):
    """The p-perturbed per-bit indicator matrix over aligned users."""

    positions: Tuple[int, ...]
    target: int = 1

    kind: ClassVar[str] = "bit_matrix"

    @classmethod
    def build(cls, positions: Sequence[int], target: int = 1) -> "BitMatrixRequest":
        try:
            target_int = int(target)
        except (TypeError, ValueError) as exc:
            raise ProtocolError("malformed_request", f"malformed target: {exc}") from exc
        return cls(positions=_int_tuple(positions, "positions"), target=target_int)

    @classmethod
    def _from_body(cls, body: dict) -> "BitMatrixRequest":
        return cls.build(_require(body, "positions"), body.get("target", 1))

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return tuple(dict.fromkeys((pos,) for pos in self.positions))


@dataclass(frozen=True)
class EvaluatePlanRequest(QueryRequest):
    """A compiled :class:`LinearPlan`: ``(subset, value, coefficient)`` terms.

    Any Section 4.1 query family the compilers produce (sums, means,
    inner products, intervals, combined constraints, decision trees)
    travels as this one kind — the compilers stay client-side, the
    engine just executes the linear combination.
    """

    terms: Tuple[Tuple[Tuple[int, ...], Tuple[int, ...], float], ...]
    description: str = ""

    kind: ClassVar[str] = "evaluate_plan"

    @classmethod
    def build(
        cls,
        terms: Sequence[Tuple[Sequence[int], Sequence[int], float]],
        description: str = "",
    ) -> "EvaluatePlanRequest":
        built = []
        for entry in terms:
            if len(entry) != 3:
                raise ProtocolError(
                    "malformed_request", f"malformed plan term: {entry!r}"
                )
            subset, value, coefficient = entry
            subset_t = _int_tuple(subset, "plan subset")
            try:
                coefficient_f = float(coefficient)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    "malformed_request", f"malformed plan coefficient: {exc}"
                ) from exc
            built.append(
                (subset_t, _value_tuple(value, len(subset_t), "plan value"), coefficient_f)
            )
        return cls(terms=tuple(built), description=str(description))

    @classmethod
    def from_plan(cls, plan: LinearPlan) -> "EvaluatePlanRequest":
        return cls.build(
            [(term.subset, term.value, term.coefficient) for term in plan.terms],
            description=plan.description,
        )

    def to_plan(self) -> LinearPlan:
        return LinearPlan(
            terms=tuple(
                PlanTerm(
                    Conjunction(
                        tuple(Literal(pos, bit) for pos, bit in zip(subset, value))
                    ),
                    coefficient,
                )
                for subset, value, coefficient in self.terms
            ),
            description=self.description,
        )

    def body(self) -> dict:
        return {
            "kind": self.kind,
            "terms": [
                {"subset": list(subset), "value": list(value), "coefficient": coefficient}
                for subset, value, coefficient in self.terms
            ],
            "description": self.description,
        }

    @classmethod
    def _from_body(cls, body: dict) -> "EvaluatePlanRequest":
        raw = _require(body, "terms")
        if not isinstance(raw, (list, tuple)):
            raise ProtocolError(
                "malformed_request", "plan terms must be a list of objects"
            )
        terms = []
        for entry in raw:
            if isinstance(entry, dict):
                terms.append(
                    (
                        _require(entry, "subset"),
                        _require(entry, "value"),
                        entry.get("coefficient", 1.0),
                    )
                )
            elif isinstance(entry, (list, tuple)) and len(entry) == 3:
                terms.append((entry[0], entry[1], entry[2]))
            else:
                raise ProtocolError(
                    "malformed_request", f"malformed plan term: {entry!r}"
                )
        return cls.build(terms, description=body.get("description", ""))

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return tuple(dict.fromkeys(subset for subset, _, _ in self.terms))


@dataclass(frozen=True)
class ShardPartialRequest(QueryRequest):
    """Shard-internal partial-statistics request (coordinator → shard worker).

    Not part of the analyst surface: the shard coordinator decomposes
    each public query into one of three *integer* sufficient statistics,
    which partials from disjoint user ranges recombine exactly (see
    :mod:`repro.queries.reduction`):

    ``bit_sums``
        one subset, each group a single value — the worker returns
        ``{"num_users", "sums"}``: the subset's user count and one
        integer bit sum per value.
    ``weight_counts``
        ``k`` subsets, each group carrying one value per subset — the
        worker returns ``{"num_users", "counts"}``: the shard's aligned
        intersection size and, per group, the ``k + 1``-entry integer
        Hamming-weight histogram of the aligned virtual-bit matrix.
    ``matrix_rows``
        ``k`` subsets, one group of targets — the worker returns
        ``{"num_users", "rows"}``: its aligned virtual-bit matrix rows,
        in the shard's (sorted) aligned order.

    A shard holding no publisher of a requested subset — or no user
    aligned across all of them — answers with ``num_users = 0`` and
    zero/empty statistics rather than an error; whether a subset is
    missing *globally* is the coordinator's call against the full
    catalog, made before any fan-out.
    """

    op: str
    subsets: Tuple[Tuple[int, ...], ...]
    groups: Tuple[Tuple[Tuple[int, ...], ...], ...]

    kind: ClassVar[str] = "shard_partial"
    OPS: ClassVar[Tuple[str, ...]] = ("bit_sums", "weight_counts", "matrix_rows")

    @classmethod
    def build(
        cls,
        op: str,
        subsets: Sequence[Sequence[int]],
        groups: Sequence[Sequence[Sequence[int]]],
    ) -> "ShardPartialRequest":
        if op not in cls.OPS:
            raise ProtocolError(
                "malformed_request",
                f"unknown shard partial op {op!r}; expected one of {list(cls.OPS)}",
            )
        subset_ts = tuple(_int_tuple(s, "shard partial subset") for s in subsets)
        if not subset_ts:
            raise ProtocolError("malformed_request", "shard partial names no subsets")
        built_groups = []
        for group in groups:
            if len(group) != len(subset_ts):
                raise ProtocolError(
                    "malformed_request",
                    f"shard partial group carries {len(group)} values "
                    f"for {len(subset_ts)} subsets",
                )
            built_groups.append(
                tuple(
                    _value_tuple(value, len(subset_t), "shard partial value")
                    for subset_t, value in zip(subset_ts, group)
                )
            )
        return cls(op=str(op), subsets=subset_ts, groups=tuple(built_groups))

    def body(self) -> dict:
        return {
            "kind": self.kind,
            "op": self.op,
            "subsets": [list(s) for s in self.subsets],
            "groups": [[list(v) for v in group] for group in self.groups],
        }

    @classmethod
    def _from_body(cls, body: dict) -> "ShardPartialRequest":
        return cls.build(
            _require(body, "op"), _require(body, "subsets"), _require(body, "groups")
        )

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return tuple(dict.fromkeys(self.subsets))


@dataclass(frozen=True)
class PingRequest(QueryRequest):
    """Liveness probe: the cheapest possible round-trip.

    Served at the perimeter without touching the engine or the
    accountant — it proves the event loop (and, through a shard worker's
    server, the worker process) is alive and draining its socket.  The
    :class:`~repro.server.sharded.ShardedService` watchdog pings every
    worker on each sweep; a ping that times out marks the worker *hung*
    even though its process is still alive.
    """

    kind: ClassVar[str] = "ping"

    @classmethod
    def build(cls) -> "PingRequest":
        return cls()

    @classmethod
    def _from_body(cls, body: dict) -> "PingRequest":
        return cls()

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return ()


@dataclass(frozen=True)
class StatusRequest(QueryRequest):
    """Ops surface: uptime, per-kind request counts, cache hit/miss,
    active kernel tier, accountant remaining, per-shard breaker state.

    Like ``ping``, served at the perimeter: the reply describes the
    *server*, releases no sketched subset, and costs no budget.
    """

    kind: ClassVar[str] = "status"

    @classmethod
    def build(cls) -> "StatusRequest":
        return cls()

    @classmethod
    def _from_body(cls, body: dict) -> "StatusRequest":
        return cls()

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return ()


def _nonempty_str(value: Any, label: str) -> str:
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            "malformed_request", f"{label} must be a non-empty string, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class RebalanceSplitRequest(QueryRequest):
    """Admin surface: split a live shard's user range in two.

    Served by the shard coordinator only (a single-store engine answers
    ``unknown_kind``): the attached :class:`ShardedService` runs the
    two-phase handoff — the donor carves its columns at ``boundary``
    (or its range median when ``boundary`` is omitted), a fresh worker
    adopts the right half, and the committed shard map flips atomically.
    Releases no sketched subset, so the accountant charges nothing.
    """

    shard_id: str
    boundary: Optional[str]

    kind: ClassVar[str] = "rebalance_split"

    @classmethod
    def build(
        cls, shard_id: str, boundary: Optional[str] = None
    ) -> "RebalanceSplitRequest":
        if boundary is not None:
            boundary = _nonempty_str(boundary, "split boundary")
        return cls(
            shard_id=_nonempty_str(shard_id, "split shard_id"), boundary=boundary
        )

    def body(self) -> dict:
        return {"kind": self.kind, "shard_id": self.shard_id, "boundary": self.boundary}

    @classmethod
    def _from_body(cls, body: dict) -> "RebalanceSplitRequest":
        return cls.build(_require(body, "shard_id"), body.get("boundary"))

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return ()


@dataclass(frozen=True)
class RebalanceMergeRequest(QueryRequest):
    """Admin surface: merge two *adjacent* live shards into the left one.

    The right shard exports its columns and warm cache, the left shard
    adopts them, and the right worker retires once the committed map
    flips.  Coordinator-only, budget-free, like ``rebalance_split``.
    """

    left: str
    right: str

    kind: ClassVar[str] = "rebalance_merge"

    @classmethod
    def build(cls, left: str, right: str) -> "RebalanceMergeRequest":
        left = _nonempty_str(left, "merge left shard")
        right = _nonempty_str(right, "merge right shard")
        if left == right:
            raise ProtocolError(
                "malformed_request", f"cannot merge shard {left!r} with itself"
            )
        return cls(left=left, right=right)

    def body(self) -> dict:
        return {"kind": self.kind, "left": self.left, "right": self.right}

    @classmethod
    def _from_body(cls, body: dict) -> "RebalanceMergeRequest":
        return cls.build(_require(body, "left"), _require(body, "right"))

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return ()


@dataclass(frozen=True)
class RebalanceStatusRequest(QueryRequest):
    """Admin surface: the current shard ranges plus any in-flight or
    recovered rebalance — phase, participants, and completion counters.
    Budget-free, like the other admin kinds."""

    kind: ClassVar[str] = "rebalance_status"

    @classmethod
    def build(cls) -> "RebalanceStatusRequest":
        return cls()

    @classmethod
    def _from_body(cls, body: dict) -> "RebalanceStatusRequest":
        return cls()

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return ()


@dataclass(frozen=True)
class ShardSnapshotRequest(QueryRequest):
    """Worker-internal prepare step (service → shard worker).

    ``op="carve"``: write the worker's columns split at ``boundary``
    (worker-chosen median when omitted) to ``left_path`` / ``right_path``
    plus a warm-cache sidecar for the right half at ``warm_path``; the
    worker keeps serving its full range from memory.  ``op="export"``:
    write the whole store to ``right_path`` and every warm entry to
    ``warm_path`` (the merge prepare).  All files are fsync'd before the
    reply, so a later "acked" checkpoint can roll forward from disk
    alone.  Not part of the analyst surface.
    """

    op: str
    boundary: Optional[str]
    left_path: Optional[str]
    right_path: str
    warm_path: Optional[str]

    kind: ClassVar[str] = "shard_snapshot"
    OPS: ClassVar[Tuple[str, ...]] = ("carve", "export")

    @classmethod
    def build(
        cls,
        op: str,
        right_path: str,
        *,
        boundary: Optional[str] = None,
        left_path: Optional[str] = None,
        warm_path: Optional[str] = None,
    ) -> "ShardSnapshotRequest":
        if op not in cls.OPS:
            raise ProtocolError(
                "malformed_request",
                f"unknown snapshot op {op!r}; expected one of {list(cls.OPS)}",
            )
        if op == "carve" and left_path is None:
            raise ProtocolError(
                "malformed_request", "carve snapshots require a left_path"
            )
        return cls(
            op=str(op),
            boundary=None if boundary is None else _nonempty_str(boundary, "boundary"),
            left_path=None
            if left_path is None
            else _nonempty_str(left_path, "left_path"),
            right_path=_nonempty_str(right_path, "right_path"),
            warm_path=None
            if warm_path is None
            else _nonempty_str(warm_path, "warm_path"),
        )

    def body(self) -> dict:
        return {
            "kind": self.kind,
            "op": self.op,
            "boundary": self.boundary,
            "left_path": self.left_path,
            "right_path": self.right_path,
            "warm_path": self.warm_path,
        }

    @classmethod
    def _from_body(cls, body: dict) -> "ShardSnapshotRequest":
        return cls.build(
            _require(body, "op"),
            _require(body, "right_path"),
            boundary=body.get("boundary"),
            left_path=body.get("left_path"),
            warm_path=body.get("warm_path"),
        )

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return ()


#: Stages of a worker-side rebalance mutation.  ``prepare`` builds the
#: post-handoff engine off to the side (a read: the worker keeps serving
#: its current range), ``commit`` installs the staged engine (a pointer
#: swap, so the coordinator's commit barrier holds for microseconds, not
#: for a store rebuild), ``all`` does both in one call.
REBALANCE_STAGES = ("prepare", "commit", "all")


def _valid_stage(stage: str) -> str:
    if stage not in REBALANCE_STAGES:
        raise ValueError(
            f"unknown rebalance stage {stage!r}; choose from {list(REBALANCE_STAGES)}"
        )
    return stage


@dataclass(frozen=True)
class ShardAdoptRequest(QueryRequest):
    """Worker-internal merge step: load the handoff store at
    ``handoff_path``, merge it after the worker's own range, persist the
    merged store to ``save_path``, and install any carried warm entries
    from ``warm_path``.  ``stage="prepare"`` does the heavy lifting
    while the worker keeps serving; ``stage="commit"`` swaps the staged
    engine in under the worker's write gate while the coordinator holds
    the commit barrier.  Not part of the analyst surface."""

    handoff_path: str
    warm_path: Optional[str]
    save_path: str
    stage: str

    kind: ClassVar[str] = "shard_adopt"

    @classmethod
    def build(
        cls,
        handoff_path: str,
        save_path: str,
        *,
        warm_path: Optional[str] = None,
        stage: str = "all",
    ) -> "ShardAdoptRequest":
        return cls(
            handoff_path=_nonempty_str(handoff_path, "handoff_path"),
            warm_path=None
            if warm_path is None
            else _nonempty_str(warm_path, "warm_path"),
            save_path=_nonempty_str(save_path, "save_path"),
            stage=_valid_stage(stage),
        )

    def body(self) -> dict:
        return {
            "kind": self.kind,
            "handoff_path": self.handoff_path,
            "warm_path": self.warm_path,
            "save_path": self.save_path,
            "stage": self.stage,
        }

    @classmethod
    def _from_body(cls, body: dict) -> "ShardAdoptRequest":
        return cls.build(
            _require(body, "handoff_path"),
            _require(body, "save_path"),
            warm_path=body.get("warm_path"),
            stage=body.get("stage", "all"),
        )

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return ()


@dataclass(frozen=True)
class ShardDropRequest(QueryRequest):
    """Worker-internal split step: shed every user ``>= boundary``,
    keeping the left carve (whose store file was already written at
    prepare) and the matching slice of each warm cache entry.
    ``stage="prepare"`` builds the shrunken engine while the worker
    keeps serving its full range; ``stage="commit"`` swaps it in under
    the worker's write gate inside the commit barrier.  Not part of the
    analyst surface."""

    boundary: str
    stage: str

    kind: ClassVar[str] = "shard_drop"

    @classmethod
    def build(cls, boundary: str, *, stage: str = "all") -> "ShardDropRequest":
        return cls(
            boundary=_nonempty_str(boundary, "drop boundary"),
            stage=_valid_stage(stage),
        )

    def body(self) -> dict:
        return {"kind": self.kind, "boundary": self.boundary, "stage": self.stage}

    @classmethod
    def _from_body(cls, body: dict) -> "ShardDropRequest":
        return cls.build(
            _require(body, "boundary"), stage=body.get("stage", "all")
        )

    def subsets_released(self) -> Tuple[Tuple[int, ...], ...]:
        return ()


#: kind -> request class, the dispatch registry both the serialiser and
#: :meth:`QueryEngine.execute` share.
REQUEST_KINDS: Dict[str, Type[QueryRequest]] = {
    cls.kind: cls
    for cls in (
        CountsBlockRequest,
        EstimateManyRequest,
        MarginalRequest,
        FractionRequest,
        AnyOfRequest,
        ExactlyLRequest,
        BitMatrixRequest,
        EvaluatePlanRequest,
        ShardPartialRequest,
        PingRequest,
        StatusRequest,
        RebalanceSplitRequest,
        RebalanceMergeRequest,
        RebalanceStatusRequest,
        ShardSnapshotRequest,
        ShardAdoptRequest,
        ShardDropRequest,
    )
}


# ----------------------------------------------------------------------
# Responses and the structured error envelope
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryResponse:
    """A successful reply: the request's ``kind`` plus its result payload.

    In-process, ``result`` is whatever the engine handler produced
    (floats, lists, NumPy arrays, :class:`QueryEstimate` objects); on
    the wire it is serialised via :func:`_jsonable` (arrays become
    nested lists, estimates become field dicts) and the client rebuilds
    the native shape per kind.
    """

    kind: str
    result: Any


@dataclass(frozen=True)
class QueryError:
    """The structured error envelope: a code from :data:`ERROR_CODES` plus
    a human-readable message.  Never a traceback."""

    code: str
    message: str


class RemoteQueryError(RuntimeError):
    """Client-side surfacing of error codes with no local exception type
    (``unauthorized``, ``rate_limited``, ``internal_error``, ...)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


def _jsonable(value: Any) -> Any:
    """Lower a handler result to JSON-native types, losslessly for floats
    (Python's ``repr`` round-trip) and exactly for ints and 0/1 bits."""
    if isinstance(value, QueryEstimate):
        return estimate_to_payload(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    return value


def estimate_to_payload(estimate: QueryEstimate) -> dict:
    """A :class:`QueryEstimate` as a JSON dict; inverse of
    :func:`estimate_from_payload`, exact for every field."""
    return {
        "fraction": float(estimate.fraction),
        "count": float(estimate.count),
        "raw_fraction": float(estimate.raw_fraction),
        "num_users": int(estimate.num_users),
        "half_width": float(estimate.half_width),
        "delta": float(estimate.delta),
    }


def estimate_from_payload(payload: dict) -> QueryEstimate:
    """Rebuild a :class:`QueryEstimate` from its wire dict."""
    try:
        return QueryEstimate(
            fraction=float(payload["fraction"]),
            count=float(payload["count"]),
            raw_fraction=float(payload["raw_fraction"]),
            num_users=int(payload["num_users"]),
            half_width=float(payload["half_width"]),
            delta=float(payload["delta"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            "malformed_request", f"malformed estimate payload: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Serialisation entry points
# ----------------------------------------------------------------------
def dumps_request(
    request: QueryRequest, *, deadline_ms: Optional[float] = None
) -> str:
    """Serialise one typed request into its wire envelope.

    ``deadline_ms`` is the optional request deadline: the *relative*
    number of milliseconds the sender still affords this request (clocks
    across hosts are not synchronised, so an absolute timestamp would be
    meaningless).  It rides the envelope, not the request body — the
    protocol version stays 1 and an absent field means *no deadline*, so
    every pre-deadline payload remains valid.
    """
    body = request.body()
    if deadline_ms is not None:
        body["deadline_ms"] = int(deadline_ms)
    return dumps_wire_message(REQUEST_TAG, PROTOCOL_VERSION, body)


def loads_request_envelope(payload: str) -> Tuple[QueryRequest, Optional[float]]:
    """Parse one request payload plus its optional deadline.

    Returns ``(request, deadline_seconds)`` where ``deadline_seconds``
    is ``None`` when the envelope carries no ``deadline_ms`` field.  A
    ``deadline_ms`` of 0 is a valid, already-expired deadline (a
    forwarding hop may run out of budget mid-flight); a negative or
    non-numeric one is ``malformed_request``.

    Raises
    ------
    ProtocolError
        ``malformed_request`` / ``unsupported_version`` for envelope
        violations, ``unknown_kind`` for a kind this engine does not
        answer — each slotting straight into the error envelope.
    """
    message = loads_wire_message(payload, REQUEST_TAG, PROTOCOL_VERSION)
    kind = message.get("kind")
    request_cls = REQUEST_KINDS.get(kind)
    if request_cls is None:
        raise ProtocolError(
            "unknown_kind",
            f"unknown request kind {kind!r}; this engine answers "
            f"{sorted(REQUEST_KINDS)}",
        )
    deadline_s: Optional[float] = None
    if "deadline_ms" in message:
        raw = message["deadline_ms"]
        if isinstance(raw, bool) or not isinstance(raw, (int, float)) or raw < 0:
            raise ProtocolError(
                "malformed_request",
                f"deadline_ms must be a non-negative number, got {raw!r}",
            )
        deadline_s = float(raw) / 1000.0
    return request_cls._from_body(message), deadline_s


def loads_request(payload: str) -> QueryRequest:
    """Parse one request payload into its typed dataclass (deadline
    dropped; the server perimeter uses :func:`loads_request_envelope`)."""
    return loads_request_envelope(payload)[0]


def dumps_response(response: QueryResponse) -> str:
    """Serialise one response (result lowered to JSON-native types)."""
    return dumps_wire_message(
        RESPONSE_TAG,
        PROTOCOL_VERSION,
        {"kind": response.kind, "result": _jsonable(response.result)},
    )


def loads_response(payload: str) -> QueryResponse:
    """Parse one response payload (result stays JSON-native)."""
    message = loads_wire_message(payload, RESPONSE_TAG, PROTOCOL_VERSION)
    return QueryResponse(kind=message.get("kind"), result=_require(message, "result"))


def dumps_error(error: QueryError) -> str:
    """Serialise one structured error envelope."""
    return dumps_wire_message(
        ERROR_TAG,
        PROTOCOL_VERSION,
        {"code": str(error.code), "message": str(error.message)},
    )


def loads_error(payload: str) -> QueryError:
    """Parse one structured error envelope."""
    message = loads_wire_message(payload, ERROR_TAG, PROTOCOL_VERSION)
    return QueryError(
        code=str(_require(message, "code")), message=str(_require(message, "message"))
    )


def parse_reply(payload: str) -> QueryResponse:
    """Client-side: parse a server reply, raising on an error envelope.

    The inverse of the server's dispatch: a response envelope is
    returned, an error envelope is re-raised as the exception its code
    maps to (so remote callers catch exactly what local callers catch).
    """
    import json as _json

    try:
        probe = _json.loads(payload)
    except _json.JSONDecodeError as exc:
        raise ProtocolError(
            "malformed_request", f"malformed wire message: {exc}"
        ) from exc
    tag = probe.get("format") if isinstance(probe, dict) else None
    if tag == ERROR_TAG:
        raise exception_from_error(loads_error(payload))
    return loads_response(payload)


# ----------------------------------------------------------------------
# Exception <-> error-envelope mapping
# ----------------------------------------------------------------------
def error_from_exception(exc: BaseException) -> QueryError:
    """Map an exception to its structured error envelope (server side).

    Engine exceptions become 4xx-style codes; anything unrecognised is
    ``internal_error`` with the exception's message only — a raw
    traceback never crosses the wire.
    """
    # Imported lazily: engine and sharded import this module, so
    # module-level imports would be circular.
    from ..server.engine import MissingSketchError
    from ..server.resilience import DeadlineExceeded
    from ..server.sharded import ShardUnavailableError

    if isinstance(exc, BudgetExceeded):
        return QueryError("budget_exceeded", str(exc))
    if isinstance(exc, DeadlineExceeded):
        return QueryError("deadline_exceeded", str(exc))
    if isinstance(exc, MissingSketchError):
        # KeyError str() wraps its message in quotes; unwrap for the wire.
        message = exc.args[0] if exc.args else str(exc)
        return QueryError("missing_sketch", str(message))
    if isinstance(exc, ShardUnavailableError):
        return QueryError("shard_unavailable", str(exc))
    if isinstance(exc, ProtocolError):
        return QueryError(exc.code, str(exc))
    if isinstance(exc, (ValueError, KeyError, TypeError, ZeroDivisionError)):
        return QueryError("invalid_query", str(exc))
    return QueryError("internal_error", f"{type(exc).__name__}: {exc}")


def exception_from_error(error: QueryError) -> Exception:
    """Map an error envelope back to the exception local callers expect."""
    from ..server.engine import MissingSketchError
    from ..server.resilience import DeadlineExceeded
    from ..server.sharded import ShardUnavailableError

    if error.code == "budget_exceeded":
        return BudgetExceeded(error.message)
    if error.code == "deadline_exceeded":
        return DeadlineExceeded(error.message)
    if error.code == "missing_sketch":
        return MissingSketchError(error.message)
    if error.code == "shard_unavailable":
        return ShardUnavailableError(error.message)
    if error.code == "invalid_query":
        return ValueError(error.message)
    if error.code in ("malformed_request", "unsupported_version", "unknown_kind"):
        return ProtocolError(error.code, error.message)
    return RemoteQueryError(error.code, error.message)


# ----------------------------------------------------------------------
# Auth handshake (first line of every connection)
# ----------------------------------------------------------------------
def dumps_hello(token: str) -> str:
    """Client's opening message: the bearer token, nothing else."""
    return dumps_wire_message(HELLO_TAG, PROTOCOL_VERSION, {"token": str(token)})


def loads_hello(payload: str) -> str:
    """Parse the opening handshake; returns the bearer token."""
    message = loads_wire_message(payload, HELLO_TAG, PROTOCOL_VERSION)
    return str(_require(message, "token"))


def dumps_welcome(analyst: str) -> str:
    """Server's handshake reply: the analyst name the token resolved to."""
    return dumps_wire_message(WELCOME_TAG, PROTOCOL_VERSION, {"analyst": str(analyst)})


def loads_welcome(payload: str) -> str:
    """Parse the handshake reply; returns the analyst name."""
    message = loads_wire_message(payload, WELCOME_TAG, PROTOCOL_VERSION)
    return str(_require(message, "analyst"))
