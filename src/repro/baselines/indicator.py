"""Figure 1's mechanism: the perturbed indicator vector.

Section 3's intuition pump, "a very private (but very inefficient)
publishing method": represent the user's k-bit value as a ``2^k``-bit
indicator vector (a single 1 at the value's position), flip every bit with
probability ``p``, publish the whole vector.  Estimation per candidate
value is the single-bit de-biasing of Section 2, and privacy is immediate
— two candidate values change the indicator in only two positions, so the
likelihood ratio is at most ``((1-p)/p)²``.

The pseudorandom sketch *simulates* exactly this object in
``ceil(log log M)`` bits instead of ``2^k``; implementing the explicit
version lets benchmark F1 verify the simulation: same query answers, same
error profile, exponentially different size — and a factor-two difference
in the log-ratio (the rejection-sampling simulation pays ``((1-p)/p)⁴``,
the price of compression).
"""

from __future__ import annotations

import numpy as np

__all__ = ["IndicatorVectorMechanism"]


class IndicatorVectorMechanism:
    """The explicit Figure 1 publisher and its estimator.

    Parameters
    ----------
    p:
        Per-bit flip probability, in ``(0, 1/2)``.
    domain_size:
        Number of candidate values (``2^k`` for a k-bit subset).
    rng:
        The users' flip coins.
    """

    def __init__(
        self, p: float, domain_size: int, rng: np.random.Generator | None = None
    ) -> None:
        if not 0.0 < p < 0.5:
            raise ValueError(f"flip probability must be in (0, 1/2), got {p}")
        if domain_size < 2:
            raise ValueError(f"domain size must be >= 2, got {domain_size}")
        self.p = p
        self.domain_size = domain_size
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def publish(self, values: np.ndarray) -> np.ndarray:
        """Publish perturbed indicator vectors for a vector of user values.

        Returns an ``(M, domain_size)`` 0/1 matrix — Figure 1's "User
        Published Vector", one row per user.
        """
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError(f"expected a 1-D value vector, got shape {values.shape}")
        if values.size and (values.min() < 0 or values.max() >= self.domain_size):
            raise ValueError(
                f"values must lie in [0, {self.domain_size}), got "
                f"[{values.min()}, {values.max()}]"
            )
        indicators = np.zeros((values.size, self.domain_size), dtype=np.int8)
        indicators[np.arange(values.size), values] = 1
        flips = self._rng.random(indicators.shape) < self.p
        return (indicators ^ flips).astype(np.int8)

    @property
    def published_bits_per_user(self) -> int:
        """The cost the sketch eliminates: ``2^k`` bits per user."""
        return self.domain_size

    # ------------------------------------------------------------------
    # Analyst side
    # ------------------------------------------------------------------
    def estimate_fraction(self, published: np.ndarray, value: int, clamp: bool = True) -> float:
        """Fraction of users holding ``value``: de-bias its column.

        "If we want to learn how often the value v occurs in the database,
        we just look up the column corresponding to v" — then apply the
        Section 2 single-bit inversion.
        """
        matrix = np.asarray(published)
        if matrix.ndim != 2 or matrix.shape[1] != self.domain_size:
            raise ValueError(
                f"expected an (M, {self.domain_size}) matrix, got {matrix.shape}"
            )
        if not 0 <= value < self.domain_size:
            raise ValueError(f"value {value} outside domain [0, {self.domain_size})")
        raw = float(matrix[:, value].mean())
        fraction = (raw - self.p) / (1.0 - 2.0 * self.p)
        if clamp:
            fraction = min(1.0, max(0.0, fraction))
        return fraction

    def estimate_histogram(self, published: np.ndarray, clamp: bool = True) -> np.ndarray:
        """De-biased frequency of every domain value."""
        return np.asarray(
            [
                self.estimate_fraction(published, value, clamp=clamp)
                for value in range(self.domain_size)
            ]
        )

    # ------------------------------------------------------------------
    # Privacy
    # ------------------------------------------------------------------
    def privacy_ratio_bound(self) -> float:
        """Worst-case likelihood ratio ``((1-p)/p)²``.

        Two candidate values change the indicator vector in exactly two
        coordinates; every other coordinate has identical distribution.
        Note this is the *square root* of the sketch's ``((1-p)/p)⁴`` —
        the explicit mechanism is more private per release; the extra
        square is the price the rejection-sampling simulation pays for
        compressing ``2^k`` bits into ``log log M``.
        """
        return ((1.0 - self.p) / self.p) ** 2
