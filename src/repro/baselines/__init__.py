"""The paper's comparators, implemented from scratch.

* :class:`IndicatorVectorMechanism` — Figure 1's explicit perturbed
  indicator vector (the object sketches simulate);
* :class:`RandomizedResponse` — Warner 1965 bit flipping [24];
* :class:`RetentionReplacement` — Agrawal et al. 2005 [3];
* :class:`SelectASize` — Evfimievski et al. 2003/2004 [10, 11].
"""

from .indicator import IndicatorVectorMechanism
from .randomized_response import RandomizedResponse
from .retention import RetentionReplacement
from .select_a_size import SelectASize

__all__ = [
    "IndicatorVectorMechanism",
    "RandomizedResponse",
    "RetentionReplacement",
    "SelectASize",
]
