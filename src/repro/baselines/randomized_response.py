"""Warner's randomized response (1965) — the bit-flipping baseline.

Each user flips every bit of their profile independently with probability
``p`` slightly below 1/2 and publishes the whole flipped vector.  Privacy
per bit follows Appendix B of the paper; utility for single-bit queries
follows the same de-biasing as Algorithm 2.

For a *conjunctive* query over ``k`` bits the analyst must reconstruct the
joint distribution from per-bit noisy data — the Appendix F linear system —
and the reconstruction error is amplified by the system's condition number,
which grows exponentially in ``k``.  This is the quantitative content of
the paper's headline comparison (experiment E7): sketches answer a width-k
conjunction with *one* perturbed bit per user, randomized response needs a
``(k+1)``-dimensional inversion.

Two cost metrics the paper highlights are also exposed:

* published size: ``q`` bits per user (vs. ``ceil(log log M)`` for a
  sketch), and dense output even for sparse profiles — ``perturb`` of a
  nearly-zero vector has ~``p`` density;
* per-profile privacy ratio ``((1-p)/p)^q`` when the *whole* vector is
  published (each bit contributes a factor, Lemma B.1 + independence).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.combine import combine_virtual_bits, condition_number

__all__ = ["RandomizedResponse"]


class RandomizedResponse:
    """Warner's mechanism over bit-vector profiles.

    Parameters
    ----------
    p:
        Per-bit flip probability, in ``(0, 1/2)``.
    rng:
        Source of the users' flip coins.
    """

    def __init__(self, p: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 < p < 0.5:
            raise ValueError(f"flip probability must be in (0, 1/2), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def perturb(self, profiles: np.ndarray) -> np.ndarray:
        """Flip every bit of an ``(M, q)`` profile matrix independently."""
        matrix = np.asarray(profiles)
        if not np.isin(matrix, (0, 1)).all():
            raise ValueError("profiles must be 0/1")
        flips = self._rng.random(matrix.shape) < self.p
        return (matrix ^ flips).astype(np.int8)

    def published_bits_per_user(self, profile_width: int) -> int:
        """Size of each user's publication: the full ``q``-bit vector."""
        return profile_width

    # ------------------------------------------------------------------
    # Privacy
    # ------------------------------------------------------------------
    def privacy_ratio_bound(self, profile_width: int = 1) -> float:
        """Worst-case distinguishing ratio for a published ``q``-bit vector.

        Two profiles differing in all ``q`` bits give likelihood ratio
        ``((1-p)/p)^q`` at the most revealing observation — bit flipping's
        privacy degrades with the *data width*, whereas a sketch's
        ``((1-p)/p)^4`` is width-independent.
        """
        return ((1.0 - self.p) / self.p) ** profile_width

    # ------------------------------------------------------------------
    # Analyst side
    # ------------------------------------------------------------------
    def estimate_bit_fraction(self, perturbed_column: np.ndarray) -> float:
        """De-biased fraction of 1s in one original column (Section 2)."""
        column = np.asarray(perturbed_column)
        raw = float(column.mean())
        return (raw - self.p) / (1.0 - 2.0 * self.p)

    def estimate_conjunction(
        self,
        perturbed_subset: np.ndarray,
        value: Sequence[int],
        clamp: bool = True,
    ) -> float:
        """Estimate ``Pr[d_B = v]`` from the flipped columns of ``B``.

        Converts each column into a "matches the target bit" indicator
        (flipping columns whose target is 0 — the flip noise is symmetric
        so the indicator stays p-perturbed) and runs the Appendix F
        weight-histogram inversion.  The returned estimate inherits the
        system's ``cond(V)`` noise amplification; see
        :meth:`conjunction_condition`.
        """
        matrix = np.asarray(perturbed_subset)
        value_t = tuple(int(v) for v in value)
        if matrix.ndim != 2 or matrix.shape[1] != len(value_t):
            raise ValueError(
                f"need an (M, {len(value_t)}) matrix, got shape {matrix.shape}"
            )
        indicators = np.empty_like(matrix)
        for j, target in enumerate(value_t):
            indicators[:, j] = matrix[:, j] if target == 1 else 1 - matrix[:, j]
        estimate = combine_virtual_bits(indicators, self.p)
        return estimate.clamped_fraction if clamp else estimate.fraction

    def conjunction_condition(self, width: int) -> float:
        """Condition number of the inversion a width-``k`` query needs."""
        return condition_number(width, self.p)

    def density_after_perturbation(self, original_density: float) -> float:
        """Expected 1-density of the published vector.

        The introduction's sparsity critique: a user with a sparse profile
        publishes a vector of density ``(1-p) d + p (1-d) ~ p`` — dense,
        and every bit of it is a (weak) signal about the user.
        """
        if not 0.0 <= original_density <= 1.0:
            raise ValueError(f"density must be in [0,1], got {original_density}")
        return (1.0 - self.p) * original_density + self.p * (1.0 - original_density)
