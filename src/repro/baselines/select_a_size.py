"""Evfimievski et al.'s transaction randomizer (the itemset-mining baseline).

The paper's second comparator [10, 11] targets *sparse* transaction data:
each user's profile has only a few 1-bits (items bought).  We implement the
uniform keep/insert randomizer at the heart of that line of work:

* every item **in** the transaction is kept with probability ``keep_prob``;
* every item **not in** the transaction is inserted with probability
  ``insert_prob``.

Support of a ``k``-itemset is recovered by inverting the ``(k+1)``-sized
mixture system: a user with ``l`` of the ``k`` items originally present
shows ``Binom(l, keep) + Binom(k-l, insert)`` of them after randomization.

Two properties drive the comparison in the paper:

* the published row is a (sparse-ish) item list, so its size scales with
  ``insert_prob * num_items`` — far more than a sketch's handful of bits;
* the inversion's conditioning degrades rapidly with ``k`` — this is the
  "number of users needed grows exponentially with the size of the
  itemset" observation, measured in experiment E7/E8.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["SelectASize"]


class SelectASize:
    """Uniform keep/insert transaction randomizer.

    Parameters
    ----------
    keep_prob:
        Probability each present item survives.
    insert_prob:
        Probability each absent item is inserted.
    rng:
        Randomness source.
    """

    def __init__(
        self,
        keep_prob: float,
        insert_prob: float,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 < keep_prob <= 1.0:
            raise ValueError(f"keep_prob must be in (0,1], got {keep_prob}")
        if not 0.0 <= insert_prob < 1.0:
            raise ValueError(f"insert_prob must be in [0,1), got {insert_prob}")
        if keep_prob <= insert_prob:
            raise ValueError(
                f"keep_prob ({keep_prob}) must exceed insert_prob ({insert_prob}) "
                "or the output carries no signal"
            )
        self.keep_prob = keep_prob
        self.insert_prob = insert_prob
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def perturb(self, transactions: np.ndarray) -> np.ndarray:
        """Randomize an ``(M, num_items)`` 0/1 transaction matrix."""
        matrix = np.asarray(transactions)
        if not np.isin(matrix, (0, 1)).all():
            raise ValueError("transactions must be 0/1")
        uniform = self._rng.random(matrix.shape)
        kept = (matrix == 1) & (uniform < self.keep_prob)
        inserted = (matrix == 0) & (uniform < self.insert_prob)
        return (kept | inserted).astype(np.int8)

    def expected_row_size(self, true_row_size: int, num_items: int) -> float:
        """Expected published item count — the size metric of E8."""
        return self.keep_prob * true_row_size + self.insert_prob * (
            num_items - true_row_size
        )

    # ------------------------------------------------------------------
    # Analyst side
    # ------------------------------------------------------------------
    def mixture_kernel(self, k: int) -> np.ndarray:
        """``(k+1) x (k+1)`` kernel: observed vs original present-count.

        Column ``l`` is the distribution of ``Binom(l, keep) +
        Binom(k-l, insert)``.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        kernel = np.zeros((k + 1, k + 1))
        for original in range(k + 1):
            for kept in range(original + 1):
                keep_mass = (
                    math.comb(original, kept)
                    * self.keep_prob**kept
                    * (1.0 - self.keep_prob) ** (original - kept)
                )
                for inserted in range(k - original + 1):
                    insert_mass = (
                        math.comb(k - original, inserted)
                        * self.insert_prob**inserted
                        * (1.0 - self.insert_prob) ** (k - original - inserted)
                    )
                    kernel[kept + inserted, original] += keep_mass * insert_mass
        return kernel

    def estimate_itemset_support(
        self, perturbed: np.ndarray, itemset: Sequence[int], clamp: bool = True
    ) -> float:
        """Estimated fraction of users whose original row contains the itemset."""
        matrix = np.asarray(perturbed)
        columns = matrix[:, list(itemset)]
        k = columns.shape[1]
        counts = columns.sum(axis=1).astype(np.int64)
        observed = np.bincount(counts, minlength=k + 1).astype(np.float64)
        observed /= matrix.shape[0]
        solved = np.linalg.solve(self.mixture_kernel(k), observed)
        support = float(solved[-1])
        return min(1.0, max(0.0, support)) if clamp else support

    def itemset_condition(self, k: int) -> float:
        """Condition number of the size-``k`` inversion (noise amplifier)."""
        return float(np.linalg.cond(self.mixture_kernel(k)))

    # ------------------------------------------------------------------
    # Privacy characteristics
    # ------------------------------------------------------------------
    def privacy_ratio_bound(self, num_differing_items: int) -> float:
        """Distinguishing ratio for transactions differing in ``m`` items.

        Each differing item contributes at worst
        ``max(keep/insert, (1-insert)/(1-keep))`` — the ratio grows with
        the Hamming distance between candidate transactions, unlike the
        width-independent sketch bound.  When ``insert_prob = 0`` the
        mechanism offers **no** gamma-amplification at all (seeing an item
        proves it was kept), which we signal with ``inf``.
        """
        if num_differing_items < 0:
            raise ValueError("item count must be >= 0")
        if self.insert_prob == 0.0:
            return math.inf
        per_item = max(
            self.keep_prob / self.insert_prob,
            (1.0 - self.insert_prob) / (1.0 - self.keep_prob)
            if self.keep_prob < 1.0
            else math.inf,
        )
        return per_item**num_differing_items
