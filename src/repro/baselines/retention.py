"""Retention replacement (Agrawal, Srikant & Thomas, SIGMOD 2005).

The generalisation of randomized response to non-binary attributes that the
paper compares against: "each user keeps their true value with fixed
probability, or replaces their true value with noise".  Concretely, each
attribute value is retained with probability ``rho`` and otherwise replaced
by a uniform draw from the domain.

Utility: point and interval frequencies invert in closed form —
``E[observed freq of v] = rho * f(v) + (1 - rho) / D``.

Privacy: this is the paper's *partial-knowledge attack* target (the
introduction's ``<1,1,2,2,3,3>`` vs ``<4,4,5,5,6,6>`` example).  When an
attacker knows the profile is one of two candidate vectors with disjoint
values, every retained component reveals which candidate is real; the
probability that *no* component is retained — the only event that keeps the
attacker guessing — is ``(1 - rho + rho/D)^q``, vanishing quickly in the
vector length.  :mod:`repro.attacks.bayes` carries out the attack;
experiment E17 scores it against sketches.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["RetentionReplacement"]


class RetentionReplacement:
    """Per-value retention replacement over a finite domain ``{0..D-1}``.

    Parameters
    ----------
    rho:
        Retention probability, in ``(0, 1)``.
    domain_size:
        Number of possible values ``D`` per component.
    rng:
        Randomness source for replacement draws.
    """

    def __init__(
        self, rho: float, domain_size: int, rng: np.random.Generator | None = None
    ) -> None:
        if not 0.0 < rho < 1.0:
            raise ValueError(f"retention probability must be in (0,1), got {rho}")
        if domain_size < 2:
            raise ValueError(f"domain size must be >= 2, got {domain_size}")
        self.rho = rho
        self.domain_size = domain_size
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # User side
    # ------------------------------------------------------------------
    def perturb(self, values: np.ndarray) -> np.ndarray:
        """Retain each entry w.p. ``rho``, else replace uniformly.

        Works elementwise on arrays of any shape (a vector of one
        attribute across users, or an ``(M, q)`` matrix of multi-attribute
        profiles).
        """
        array = np.asarray(values)
        if array.size and (array.min() < 0 or array.max() >= self.domain_size):
            raise ValueError(
                f"values must lie in [0, {self.domain_size}), "
                f"got range [{array.min()}, {array.max()}]"
            )
        keep = self._rng.random(array.shape) < self.rho
        noise = self._rng.integers(0, self.domain_size, size=array.shape)
        return np.where(keep, array, noise)

    # ------------------------------------------------------------------
    # Analyst side
    # ------------------------------------------------------------------
    def estimate_point_fraction(self, perturbed: np.ndarray, value: int) -> float:
        """De-biased frequency of one domain value in one column."""
        observed = float(np.mean(np.asarray(perturbed) == value))
        background = (1.0 - self.rho) / self.domain_size
        return (observed - background) / self.rho

    def estimate_interval_fraction(self, perturbed: np.ndarray, threshold: int) -> float:
        """De-biased ``Pr[a <= threshold]`` from one perturbed column."""
        observed = float(np.mean(np.asarray(perturbed) <= threshold))
        background = (1.0 - self.rho) * (threshold + 1) / self.domain_size
        return (observed - background) / self.rho

    # ------------------------------------------------------------------
    # Privacy characteristics
    # ------------------------------------------------------------------
    def single_value_ratio(self) -> float:
        """Distinguishing ratio for one published component.

        Seeing the true value vs. any other value:
        ``(rho + (1-rho)/D) / ((1-rho)/D)`` — already large for moderate
        ``rho`` and ``D``, and it *compounds across components*.
        """
        background = (1.0 - self.rho) / self.domain_size
        return (self.rho + background) / background

    def likelihood(self, observed: Sequence[int], candidate: Sequence[int]) -> float:
        """``Pr[observed vector | true profile = candidate]``.

        The exact per-component product the Bayesian attacker uses:
        ``rho + (1-rho)/D`` where the observation matches the candidate,
        ``(1-rho)/D`` where it does not.
        """
        obs = np.asarray(observed)
        cand = np.asarray(candidate)
        if obs.shape != cand.shape:
            raise ValueError(f"shape mismatch: {obs.shape} vs {cand.shape}")
        background = (1.0 - self.rho) / self.domain_size
        match = self.rho + background
        matches = int((obs == cand).sum())
        return match**matches * background ** (obs.size - matches)

    def undetectable_probability(self, num_disjoint_components: int) -> float:
        """Probability the two-candidate attacker learns *nothing*.

        For candidates with ``q`` pairwise-distinct components, the
        attacker stays at their prior only if every component was
        replaced by noise that matches neither candidate pattern's
        likelihood asymmetry — at best ``(1 - rho + rho/D)`` per
        component under the most charitable accounting; this upper bound
        uses ``(1-rho)`` (replacement happened) which is already tiny for
        realistic ``rho`` and ``q``.
        """
        if num_disjoint_components < 0:
            raise ValueError("component count must be >= 0")
        return (1.0 - self.rho) ** num_disjoint_components
