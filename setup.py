"""Legacy setup shim.

The environment has no `wheel` package (offline), so PEP 660 editable
installs fail; `pip install -e . --no-use-pep517 --no-build-isolation`
falls back to `setup.py develop`, which this shim enables.
"""

from setuptools import setup

setup()
