"""Build script: packages plus the optional compiled kernel tier.

The environment has no `wheel` package (offline), so PEP 660 editable
installs fail; `pip install -e . --no-use-pep517 --no-build-isolation`
falls back to `setup.py develop`, which this shim enables.

The `repro.core.kernels._ckernel` extension (the GIL-releasing fused
Philox threshold kernel) builds with

    python setup.py build_ext --inplace

and is strictly optional: every caller falls back to the bit-identical
NumPy tier when the extension is missing (see repro/core/kernels).
"""

import numpy
from setuptools import Extension, find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    ext_modules=[
        Extension(
            "repro.core.kernels._ckernel",
            sources=["src/repro/core/kernels/_ckernelmodule.c"],
            include_dirs=[numpy.get_include()],
            extra_compile_args=["-O3"],
        )
    ],
)
