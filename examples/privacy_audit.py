"""Privacy audit: the paper's attacks, run against every mechanism.

Plays the unbounded partial-knowledge attacker of Definition 1 against

* pseudorandom sketches      (this paper),
* retention replacement      (Agrawal et al. — the introduction's victim),
* randomized response        (Warner),
* a deterministic hash       (Section 3's motivating non-solution),

on the introduction's exact example: each user's private vector is either
<1,1,2,2,3,3> or <4,4,5,5,6,6> and the attacker knows both candidates.

Run:  python examples/privacy_audit.py
"""

from __future__ import annotations

import numpy as np

from repro import BiasedPRF, PrivacyParams, Sketcher
from repro.attacks import (
    attack_randomized_response,
    attack_retention,
    attack_sketches,
    dictionary_attack_hash,
    dictionary_attack_sketch,
    hash_publish,
    map_success_rate,
    posterior_entropy,
)
from repro.baselines import RandomizedResponse, RetentionReplacement
from repro.data import two_candidate_population

CANDIDATE_A = [1, 1, 2, 2, 3, 3]
CANDIDATE_B = [4, 4, 5, 5, 6, 6]


def encode_bits(vector):
    bits = []
    for v in vector:
        bits.extend([(v >> 2) & 1, (v >> 1) & 1, v & 1])
    return bits


def main() -> None:
    rng = np.random.default_rng(2006)
    params = PrivacyParams(p=0.3)
    prf = BiasedPRF(p=params.p, global_key=b"privacy-audit-demo-global-key32!")

    num_users = 300
    bits_a, bits_b = encode_bits(CANDIDATE_A), encode_bits(CANDIDATE_B)
    database, truth = two_candidate_population(num_users, bits_a, bits_b, rng=rng)
    truth_bool = truth.astype(bool)
    print(f"population: {num_users} users, each holding one of two known 6-value "
          f"vectors\nattacker: unbounded, knows both candidates, prior 50/50\n")

    # --- sketches -------------------------------------------------------
    sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
    subset = tuple(range(18))
    results = []
    for profile in database:
        sketch = sketcher.sketch(profile.user_id, profile.bits, subset)
        results.append(attack_sketches(prf, params, [sketch], bits_a, bits_b))
    sketch_success = map_success_rate(results, truth_bool)
    worst_shift = max(r.advantage for r in results)
    print(f"sketches          : MAP success {sketch_success:6.1%}   "
          f"worst posterior shift {worst_shift:.3f}  "
          f"(Lemma 3.3 cap: ratio <= {params.privacy_ratio_bound():.1f})")

    # --- retention replacement ------------------------------------------
    retention = RetentionReplacement(0.5, 8, rng=rng)
    results = []
    for holds_a in truth_bool:
        vector = np.array(CANDIDATE_A if holds_a else CANDIDATE_B)
        results.append(
            attack_retention(retention, retention.perturb(vector), CANDIDATE_A, CANDIDATE_B)
        )
    print(f"retention (rho=.5): MAP success {map_success_rate(results, truth_bool):6.1%}   "
          f"('virtually reveals the exact private data' — §1)")

    # --- randomized response --------------------------------------------
    flip = RandomizedResponse(params.p, rng=rng)
    results = []
    for holds_a in truth_bool:
        profile = np.array([bits_a if holds_a else bits_b])
        observed = flip.perturb(profile)[0]
        results.append(attack_randomized_response(flip, observed, bits_a, bits_b))
    print(f"randomized resp.  : MAP success {map_success_rate(results, truth_bool):6.1%}   "
          f"(ratio grows as ((1-p)/p)^hamming = "
          f"{flip.privacy_ratio_bound(18):.0f} here)")

    # --- deterministic hash ----------------------------------------------
    recovered = 0
    candidates = [tuple(bits_a), tuple(bits_b)]
    for profile, holds_a in zip(database, truth_bool):
        published = hash_publish(profile.bits)
        guess = dictionary_attack_hash(published, candidates)
        recovered += guess == (0 if holds_a else 1)
    print(f"plain hash        : MAP success {recovered / num_users:6.1%}   "
          f"(dictionary attack, §3)")

    # --- 100-candidate dictionary, sketch vs hash ------------------------
    print("\n100-candidate dictionary attack (Bob knows Alice's value is one "
          "of 100):")
    dictionary = [tuple(int(b) for b in f"{i:07b}") for i in range(100)]
    secret = list(dictionary[42])
    sketch = sketcher.sketch("alice", secret, tuple(range(7)))
    posterior = dictionary_attack_sketch(prf, params, sketch, dictionary)
    print(f"  sketch: max posterior {posterior.max():.4f} (uniform = 0.0100), "
          f"residual entropy {posterior_entropy(posterior):.2f} / 6.64 bits")
    hashed = hash_publish(secret)
    print(f"  hash  : candidate #{dictionary_attack_hash(hashed, dictionary)} "
          f"recovered exactly — 0.00 bits of residual uncertainty")


if __name__ == "__main__":
    main()
