"""Streaming collection: live estimates, sharded collectors, persistence.

An operational tour of the server substrate around the paper's algorithms:

1. users publish to two regional collectors (shards);
2. an analyst watches a *running* estimate converge as sketches stream in
   (bit-identical to batch Algorithm 2 at every prefix);
3. the shards are merged, serialized to disk, reloaded, and queried —
   the published file IS the dataset; no raw data ever moves.

Run:  python examples/streaming_collection.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher
from repro.data import correlated_survey
from repro.server import (
    SketchStore,
    StreamingEstimator,
    load_store,
    merge_stores,
    save_store,
)


def main() -> None:
    rng = np.random.default_rng(17)
    params = PrivacyParams(p=0.3)
    prf = BiasedPRF(p=params.p, global_key=b"streaming-demo-public-key-32byt!")
    estimator = SketchEstimator(params, prf)

    num_users = 8000
    database = correlated_survey(num_users, 3, base_rate=0.4, copy_prob=0.7, rng=rng)
    subset = (0, 1)
    truth = database.exact_conjunction(subset, (1, 1))
    print(f"{num_users} users, watching query 'q0 AND q1' (truth = {truth:.4f})\n")

    # --- 1. two regional collectors -------------------------------------
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    shards = (SketchStore(), SketchStore())
    streaming = StreamingEstimator(estimator)
    streaming.register(subset, (1, 1))

    checkpoints = {500, 2000, 8000}
    for index, profile in enumerate(database):
        sketch = sketcher.sketch(profile.user_id, profile.bits, subset)
        shards[index % 2].publish(sketch)     # users pick a shard
        streaming.ingest(sketch)              # analyst's live feed
        if (index + 1) in checkpoints:
            estimate = streaming.estimate(subset, (1, 1))
            print(f"  after {index + 1:5d} users: estimate = "
                  f"{estimate.fraction:.4f} +/- {estimate.half_width:.4f}")

    # --- 2. streaming == batch ------------------------------------------
    merged = merge_stores(*shards)
    batch = estimator.estimate(merged.sketches_for(subset), (1, 1))
    live = streaming.estimate(subset, (1, 1))
    print(f"\nbatch Algorithm 2 on merged shards: {batch.fraction:.6f}")
    print(f"streaming estimator final value   : {live.fraction:.6f}")
    assert batch.fraction == live.fraction, "streaming must equal batch exactly"

    # --- 3. persistence ---------------------------------------------------
    with tempfile.NamedTemporaryFile(suffix=".jsonl", mode="w", delete=False) as handle:
        path = handle.name
    written = save_store(merged, path, params)
    reloaded, header = load_store(path)
    reloaded_estimate = estimator.estimate(reloaded.sketches_for(subset), (1, 1))
    print(f"\nwrote {written} sketches to {path} (header records p = {header['p']})")
    print(f"reloaded-store estimate          : {reloaded_estimate.fraction:.6f}")
    assert reloaded_estimate.fraction == batch.fraction

    print("\nOK: shards merged, persisted, reloaded — identical answers throughout.")


if __name__ == "__main__":
    main()
