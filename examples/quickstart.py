"""Quickstart: publish sketches, answer a conjunctive query.

Reproduces the paper's core loop end to end, including the Figure 1
intuition (a user's value as a perturbed indicator over all candidate
values, realised implicitly by the pseudorandom sketch).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher
from repro.data import correlated_survey
from repro.server import publish_database


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Parameters.  p is the bias of the public function H; closer to
    #    1/2 means more privacy and more noise.  p = 0.3 gives a
    #    per-sketch distinguishing ratio of ((1-p)/p)^4 ~ 29.6.
    params = PrivacyParams(p=0.3)
    print(f"bias p                 = {params.p}")
    print(f"privacy ratio bound    = {params.privacy_ratio_bound():.2f}  (Lemma 3.3)")
    print(f"sketch length for 1e6 users, tau=1e-6: "
          f"{params.sketch_length(10**6, 1e-6)} bits  (Lemma 3.1)")

    # 2. The public pseudorandom function.  Everyone — users, aggregator,
    #    attacker — shares it; the global key is public too.
    prf = BiasedPRF(p=params.p, global_key=b"any 32 public bytes will do....!")

    # 3. A population.  3000 users answer a 4-question survey with
    #    correlated answers (think: smoker / cough / diagnosis / treated).
    database = correlated_survey(3000, 4, base_rate=0.35, copy_prob=0.75, rng=rng)

    # 4. Each user runs Algorithm 1 locally and publishes one sketch of the
    #    question subset the study cares about.  Nothing else leaves the
    #    user's machine.
    subset = (0, 1, 3)  # questions 0, 1 and 3
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    store = publish_database(database, sketcher, [subset])
    print(f"\npublished {store.num_users(subset)} sketches of subset {subset}, "
          f"{store.total_published_bits()} bits total "
          f"({store.total_published_bits() / len(database):.0f} bits/user)")

    # 5. The aggregator answers conjunctive queries with Algorithm 2 —
    #    any of the 2^3 value combinations over the sketched subset,
    #    negated or unnegated.
    estimator = SketchEstimator(params, prf)
    print("\nquery: fraction with q0=1 AND q1=1 AND q3=0  ('smokes, coughs, untreated')")
    estimate = estimator.estimate(store.sketches_for(subset), (1, 1, 0))
    truth = database.exact_conjunction(subset, (1, 1, 0))
    low, high = estimate.interval
    print(f"  estimate = {estimate.fraction:.4f}   (95% CI [{low:.4f}, {high:.4f}])")
    print(f"  truth    = {truth:.4f}")
    print(f"  |error|  = {abs(estimate.fraction - truth):.4f}  "
          f"(Lemma 4.1 bound at delta=0.05: {estimate.half_width:.4f})")

    assert estimate.covers(truth), "estimate should cover the truth at 95%"
    print("\nOK: estimate within the Lemma 4.1 confidence interval.")


if __name__ == "__main__":
    main()
