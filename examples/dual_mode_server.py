"""Appendix A: a dual-mode statistical server (paid SULQ + free sketches).

A trusted curator holds a market-basket database and offers two query
modes, exactly as Appendix A recommends:

* paid — output perturbation with noise E and a hard budget of E^2 queries;
* free — input perturbation via sketches: O(sqrt(M)) noise, unlimited
  queries, and the curator could lose the raw data tomorrow without
  endangering anyone (only sketches are needed to answer).

Run:  python examples/dual_mode_server.py
"""

from __future__ import annotations

import numpy as np

from repro import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher
from repro.data import sparse_transactions
from repro.server import DualModeServer, QueryBudgetExhausted


def main() -> None:
    rng = np.random.default_rng(99)
    params = PrivacyParams(p=0.25)
    prf = BiasedPRF(p=params.p, global_key=b"dual-mode-server-demo-key-32byt!")

    num_users = 10000
    num_items = 12
    database = sparse_transactions(num_users, num_items, items_per_user=3, rng=rng)
    print(f"database: {num_users} transactions over {num_items} items")

    noise = 25.0  # E <= sqrt(M) = 100
    subsets = [(i,) for i in range(num_items)] + [(0, 1), (0, 2)]
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    server = DualModeServer(
        database, sketcher, SketchEstimator(params, prf),
        subsets=subsets, noise_magnitude=noise, rng=rng,
    )
    print(f"paid mode: noise E = {noise}, budget = {server.paid.query_budget} queries")
    print(f"free mode: sketch-backed, noise O(sqrt(M)) ~ {np.sqrt(num_users):.0f}, "
          f"unlimited queries\n")

    exact = database.exact_count((0,), (1,))
    paid = server.count((0,), (1,), mode="paid")
    free = server.count((0,), (1,), mode="free")
    print("query: how many transactions contain item 0?")
    print(f"  exact: {exact}")
    print(f"  paid : {paid:8.1f}   (error {abs(paid - exact):7.1f})")
    print(f"  free : {free:8.1f}   (error {abs(free - exact):7.1f})")

    pair_exact = database.exact_count((0, 1), (1, 1))
    pair_free = server.count((0, 1), (1, 1), mode="free")
    print("\nquery: how many contain items 0 AND 1?")
    print(f"  exact: {pair_exact},  free: {pair_free:.1f}")

    print(f"\ndraining the paid budget ({server.paid.queries_remaining} left)...")
    answered = 1
    try:
        while True:
            server.count((answered % num_items,), (1,), mode="paid")
            answered += 1
    except QueryBudgetExhausted as exc:
        print(f"  after {answered} paid queries: {exc}")

    print("\nfree mode keeps answering:")
    for item in range(3):
        answer = server.count((item,), (1,), mode="free")
        truth = database.exact_count((item,), (1,))
        print(f"  item {item}: free={answer:8.1f}  exact={truth}")

    free_queries = sum(1 for record in server.audit_log if record.mode == "free")
    paid_queries = sum(1 for record in server.audit_log if record.mode == "paid")
    print(f"\naudit log: {paid_queries} paid + {free_queries} free queries answered")


if __name__ == "__main__":
    main()
