"""Salary analytics: every Section 4.1 query family on integer attributes.

A payroll-survey scenario: users hold (salary, age) as 6-bit integers and
publish per-bit and per-prefix sketches once.  The analyst then answers —
from published data only —

* the mean salary                       (eq. 4 bit decomposition),
* the salary/age inner product          (k^2 two-bit queries),
* "how many earn <= c?"                 (popcount(c) prefix queries),
* "mean age of those earning <= c"      (combined constraints),
* "how many have salary + age < 2^r?"   (Appendix E virtual XOR bits).

Run:  python examples/salary_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher
from repro.data import salary_table
from repro.server import (
    QueryEngine,
    per_bit_subsets,
    prefix_subsets,
    publish_database,
)


def main() -> None:
    rng = np.random.default_rng(42)
    params = PrivacyParams(p=0.25)
    prf = BiasedPRF(p=params.p, global_key=b"salary-analytics-demo-key-32by!!")

    num_users = 20000
    database = salary_table(num_users, bits=6, attributes=("salary", "age"), rng=rng)
    print(f"population: {num_users} users, 6-bit salary and age attributes")

    # Publishing policy: every single bit (for sums / inner products /
    # Appendix E) plus every salary prefix (for direct interval queries).
    subsets = list(
        dict.fromkeys(
            per_bit_subsets(database.schema) + prefix_subsets(database.schema, "salary")
        )
    )
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    store = publish_database(database, sketcher, subsets)
    engine = QueryEngine(database.schema, store, SketchEstimator(params, prf))
    print(f"published {len(subsets)} sketches/user, "
          f"{store.total_published_bits() // len(database)} bits/user total\n")

    def report(name, estimate, truth):
        print(f"  {name:44s} estimate={estimate:12.2f}  truth={truth:12.2f}  "
              f"rel.err={abs(estimate - truth) / max(abs(truth), 1):6.2%}")

    print("eq. 4 — sums and means (k single-bit queries each):")
    report("sum(salary)", engine.sum("salary"), database.exact_sum("salary"))
    report("mean(salary)", engine.mean("salary"), database.exact_mean("salary"))
    report("mean(age)", engine.mean("age"), database.exact_mean("age"))

    print("\ninner product (k^2 = 36 two-bit queries):")
    report(
        "sum(salary * age)",
        engine.inner_product("salary", "age"),
        database.exact_inner_product("salary", "age"),
    )

    print("\ninterval queries (popcount(c) prefix queries each):")
    for threshold in (10, 21, 42):
        report(
            f"count(salary <= {threshold})",
            engine.count_less_equal("salary", threshold),
            database.exact_interval("salary", threshold) * len(database),
        )

    print("\ncombined constraints:")
    threshold = 21
    truth_mean = (
        database.exact_sum_below("salary", "age", threshold)
        / max(1, round(database.exact_interval("salary", threshold) * len(database)))
    )
    report(
        f"mean(age | salary <= {threshold})",
        engine.mean_where_less_equal("age", "salary", threshold),
        truth_mean,
    )

    print("\nAppendix E — a + b < 2^r via virtual XOR bits:")
    for power in (5, 6):
        estimate = engine.addition_below("salary", "age", power)
        truth = database.exact_addition_interval("salary", "age", power)
        report(f"frac(salary + age < {1 << power})", estimate, truth)

    print("\nAll answers computed from published sketches only.")


if __name__ == "__main__":
    main()
