"""Frequent itemset mining on sparse transactions — sketches vs select-a-size.

The regime Evfimievski et al. [10, 11] target: market-basket rows with a
handful of items each.  Both mechanisms publish privatised data once; the
miner then estimates itemset supports.  The paper's claims on display:

* a sketch of the *itemset of interest* answers its support with
  width-independent error, while the transaction randomizer's inversion
  degrades with itemset size;
* the published footprint: a few bits per sketch vs a perturbed item list.

Run:  python examples/frequent_itemsets.py
"""

from __future__ import annotations

import numpy as np

from repro import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher
from repro.baselines import SelectASize
from repro.data import sparse_transactions
from repro.queries import Conjunction
from repro.server import QueryEngine, publish_database


def main() -> None:
    rng = np.random.default_rng(1234)
    params = PrivacyParams(p=0.25)
    prf = BiasedPRF(p=params.p, global_key=b"itemset-mining-demo-key-32-byte!")

    num_users, num_items = 20000, 40
    database = sparse_transactions(num_users, num_items, items_per_user=4, rng=rng)
    matrix = database.matrix()
    print(f"{num_users} transactions, {num_items} items, 4 items/row\n")

    # Itemsets of interest (known up front, as in targeted market studies).
    itemsets = [(0,), (1,), (0, 1), (0, 1, 2), (0, 1, 2, 3), (0, 1, 2, 3, 4, 5)]

    # --- sketches: each user publishes one sketch per itemset subset ------
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    store = publish_database(database, sketcher, itemsets)
    engine = QueryEngine(database.schema, store, SketchEstimator(params, prf))
    sketch_bits_per_user = store.total_published_bits() / num_users

    # --- select-a-size: one randomized transaction per user ---------------
    randomizer = SelectASize(keep_prob=0.8, insert_prob=0.05, rng=rng)
    perturbed = randomizer.perturb(matrix)
    sas_bits_per_user = float(perturbed.sum(axis=1).mean()) * np.ceil(np.log2(num_items))

    print(f"{'itemset':>16}  {'truth':>8}  {'sketch':>8}  {'select-a-size':>13}  "
          f"{'cond(kernel)':>12}")
    for itemset in itemsets:
        value = tuple([1] * len(itemset))
        truth = database.exact_conjunction(itemset, value)
        sketch_est = engine.fraction(itemset, value)
        sas_est = randomizer.estimate_itemset_support(perturbed, list(itemset))
        print(f"{str(itemset):>16}  {truth:8.4f}  {sketch_est:8.4f}  "
              f"{sas_est:13.4f}  {randomizer.itemset_condition(len(itemset)):12.1f}")

    print(f"\npublished size per user: sketches {sketch_bits_per_user:.0f} bits "
          f"({len(itemsets)} x 10-bit keys), select-a-size ~{sas_bits_per_user:.0f} bits "
          "(perturbed item list)")

    # Disjunctive mining query via Appendix F's complement trick.
    any_fraction = engine.any_of([Conjunction.of((0, 1)), Conjunction.of((1, 1))])
    truth_any = float(((matrix[:, 0] == 1) | (matrix[:, 1] == 1)).mean())
    print(f"\ndisjunction: frac(item0 OR item1) estimate={any_fraction:.4f} "
          f"truth={truth_any:.4f}")


if __name__ == "__main__":
    main()
