"""Sharded collection: the same store from 1 worker or N, bit for bit.

Collection is embarrassingly parallel on the user axis — each user runs
Algorithm 1 on their own machine, and the collector's store is a pure
union of what arrives.  ``publish_database(..., workers=N)`` models that
with a ``multiprocessing`` pool: users are split into contiguous shards,
each worker sketches its shard with per-user coins derived from
``(seed, global user index)``, and the shard stores merge via
``merge_stores``.  Because the coins never depend on the worker layout,
every ``workers`` value publishes the *identical* store — this script
collects sequentially and sharded, then asserts the stores and every
query answer agree exactly.

Run:  python examples/parallel_collection.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher
from repro.data import correlated_survey
from repro.server import publish_database
from repro.server.serialization import dumps_store

NUM_USERS = 4000
SUBSETS = [(0, 1), (1, 2), (0, 2, 3)]
SEED = 2006


def main() -> None:
    params = PrivacyParams(p=0.3)
    prf = BiasedPRF(p=params.p, global_key=b"any 32 public bytes will do....!")
    database = correlated_survey(
        NUM_USERS, 4, base_rate=0.35, copy_prob=0.75, rng=np.random.default_rng(7)
    )
    sketcher = Sketcher(params, prf, sketch_bits=10)

    # 1. Sequential collection (workers=1): one process, but the same
    #    deterministic per-user coins the sharded path uses.
    start = time.perf_counter()
    sequential = publish_database(database, sketcher, SUBSETS, workers=1, seed=SEED)
    sequential_s = time.perf_counter() - start

    # 2. Sharded collection: users split across a process pool, shard
    #    stores merged.  Nothing else changes.
    start = time.perf_counter()
    sharded = publish_database(database, sketcher, SUBSETS, workers=2, seed=SEED)
    sharded_s = time.perf_counter() - start

    print(f"{NUM_USERS} users x {len(SUBSETS)} subsets")
    print(f"  workers=1: {sequential_s:.2f}s")
    print(f"  workers=2: {sharded_s:.2f}s")

    # 3. The stores are byte-identical — same users, same keys, same
    #    iteration counts, so any downstream consumer is oblivious to how
    #    collection was laid out.
    assert dumps_store(sequential, include_iterations=True) == dumps_store(
        sharded, include_iterations=True
    ), "sharded store differs from sequential store"
    print("stores identical: yes (byte-for-byte, iterations included)")

    # 4. Hence every query answers identically (not merely close).
    estimator = SketchEstimator(params, prf)
    for subset in SUBSETS:
        value = tuple([1] * len(subset))
        a = estimator.estimate(sequential.sketches_for(subset), value)
        b = estimator.estimate(sharded.sketches_for(subset), value)
        assert a.fraction == b.fraction, (subset, a.fraction, b.fraction)
        truth = database.exact_conjunction(subset, value)
        print(
            f"  query d_{subset} = {value}: estimate {a.fraction:.4f} "
            f"(truth {truth:.4f}) — identical on both stores"
        )

    print("\nOK: sharded collection is a drop-in replacement.")


if __name__ == "__main__":
    main()
